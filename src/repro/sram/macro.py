"""The SRAM CIM macro: quantised matrix-vector products on bit lines.

Behavioural model of the paper's Fig. 3a macro.  Weights are stored as
signed fixed-point codes; an input vector is applied through the column
peripherals (optionally ANDed with an input-dropout bitstream) and each
output row's product accumulates on its bit line, quantised by a per-column
ADC with analog noise.  Output-dropout masks gate row activations, skipping
their evaluation (and energy) entirely.

A delta port (:meth:`matvec_delta`) supports the compute-reuse schedule:
given the previous accumulated products and the input *change* vector, only
the changed columns are driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.energy import EnergyLedger
from repro.circuits.technology import NODE_16NM, TechnologyNode
from repro.nn.quantization import QuantizationSpec, dequantize, quantize


@dataclass(frozen=True)
class MacroConfig:
    """Macro configuration.

    Attributes:
        node: technology node (paper: 16 nm, 0.85 V, 1 GHz).
        weight_bits: stored weight precision (paper: 4 or 6).
        input_bits: input DAC precision.
        adc_bits: column ADC precision.
        adc_noise_lsb: 1-sigma analog noise referred to the ADC input, in
            LSBs of the ADC step.
        adc_clip_sigma: ADC full scale as a multiple of the partial-sum
            standard deviation (calibrated per layer at mapping time).
        mac_energy_j: analog MAC energy keyed by weight precision.
    """

    node: TechnologyNode = NODE_16NM
    weight_bits: int = 4
    input_bits: int = 6
    adc_bits: int = 6
    adc_noise_lsb: float = 0.3
    adc_clip_sigma: float = 6.0
    mac_energy_j: dict[int, float] = field(
        default_factory=lambda: {4: 1.6e-15, 6: 2.6e-15, 8: 4.5e-15}
    )

    def mac_energy(self) -> float:
        if self.weight_bits in self.mac_energy_j:
            return self.mac_energy_j[self.weight_bits]
        # Off-table precisions interpolate from the nearest tabulated one;
        # ties break to the lower precision regardless of dict insertion
        # order, so 5-bit always scales from the 4-bit entry.
        nearest = min(
            self.mac_energy_j, key=lambda b: (abs(b - self.weight_bits), b)
        )
        return self.mac_energy_j[nearest] * (self.weight_bits / nearest)


class SRAMCIMMacro:
    """One macro storing a weight matrix.

    Args:
        weight: (in_features, out_features) float weight matrix.
        config: macro configuration.
        rng: generator for frozen per-column gain mismatch.
        calibration_inputs: optional sample inputs used to size the ADC
            full scale; defaults to unit-variance assumptions.
        gain_mismatch_sigma: per-column multiplicative gain spread.
    """

    def __init__(
        self,
        weight: np.ndarray,
        config: MacroConfig | None = None,
        rng: np.random.Generator | None = None,
        calibration_inputs: np.ndarray | None = None,
        gain_mismatch_sigma: float = 0.01,
    ):
        weight = np.asarray(weight, dtype=float)
        if weight.ndim != 2:
            raise ValueError("weight must be (in, out)")
        self.config = config or MacroConfig()
        rng = rng or np.random.default_rng(0)
        self.in_features, self.out_features = weight.shape
        self.weight_spec = QuantizationSpec.for_tensor(weight, self.config.weight_bits)
        self.weight_codes = quantize(weight, self.weight_spec)
        self.stored_weight = dequantize(self.weight_codes, self.weight_spec)
        if gain_mismatch_sigma > 0:
            self.column_gain = rng.lognormal(
                mean=-0.5 * gain_mismatch_sigma**2,
                sigma=gain_mismatch_sigma,
                size=self.out_features,
            )
        else:
            self.column_gain = np.ones(self.out_features)
        self.ledger = EnergyLedger(
            label=f"sram-macro[{self.in_features}x{self.out_features}w{self.config.weight_bits}]"
        )
        # Input-DAC range: pinned once (at calibration, or lazily from the
        # first driven input) instead of being re-fit per matvec.  A fixed
        # DAC range is what real column peripherals have, it removes the
        # per-call QuantizationSpec refit from the hot path, and it makes
        # the delta port quantise ``delta_x`` against the same grid as
        # full reads instead of the delta's own (much smaller) range.
        self.input_spec: QuantizationSpec | None = None
        # ADC full-scale calibration against the layer's product statistics.
        if calibration_inputs is not None:
            self.recalibrate(calibration_inputs)
        else:
            scale = (
                float(np.sqrt(self.in_features) * np.abs(self.stored_weight).std())
                or 1.0
            )
            self._set_adc_scale(scale)

    def _set_adc_scale(self, scale: float) -> None:
        self.adc_full_scale = self.config.adc_clip_sigma * scale
        self.adc_step = self.adc_full_scale / (2 ** (self.config.adc_bits - 1) - 1)

    def recalibrate(
        self, calibration_inputs: np.ndarray, input_headroom: float = 1.0
    ) -> None:
        """Re-size the column ADC range from representative activations.

        Standard macro bring-up practice: run sample inputs, set the ADC
        full scale so the observed partial-sum distribution fills the code
        range without systematic clipping.  The input-DAC range is pinned
        from the same sample; ``input_headroom`` widens it for runtime
        scalings the sample does not carry (e.g. the ``1 / keep_prob``
        inverted-dropout factor).
        """
        if input_headroom <= 0:
            raise ValueError("input_headroom must be positive")
        sample = np.atleast_2d(np.asarray(calibration_inputs, dtype=float))
        products = sample @ self.stored_weight
        self._set_adc_scale(float(products.std()) or 1.0)
        self.pin_input_range(float(np.max(np.abs(sample))) * input_headroom)

    def pin_input_range(self, max_abs: float) -> QuantizationSpec:
        """Fix the input-DAC full scale to ``max_abs`` (returns the spec)."""
        self.input_spec = QuantizationSpec(
            bits=self.config.input_bits, max_value=max_abs if max_abs > 0 else 1.0
        )
        return self.input_spec

    def _ensure_input_spec(self, x: np.ndarray) -> QuantizationSpec:
        """The pinned DAC spec, pinning it from ``x`` on first use."""
        if self.input_spec is None:
            self.input_spec = QuantizationSpec.for_tensor(x, self.config.input_bits)
        return self.input_spec

    def _read_columns(
        self,
        analog: np.ndarray,
        rng: np.random.Generator | None,
        noise: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply gain mismatch, analog noise and ADC quantisation.

        ``noise`` is an optional pre-drawn standard-normal array of
        ``analog``'s shape; engines that vectorise over iterations draw
        their noise up front (in loop order) and inject it here so the
        fused path consumes the very same variates as the loop path.
        """
        values = analog * self.column_gain
        if self.config.adc_noise_lsb > 0:
            if noise is None:
                if rng is None:
                    raise ValueError("rng required for noisy macro reads")
                noise = rng.normal(size=values.shape)
            values = values + noise * (self.config.adc_noise_lsb * self.adc_step)
        clipped = np.clip(values, -self.adc_full_scale, self.adc_full_scale)
        return np.rint(clipped / self.adc_step) * self.adc_step

    def matvec(
        self,
        x: np.ndarray,
        input_mask: np.ndarray | None = None,
        output_mask: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        noise: np.ndarray | None = None,
    ) -> np.ndarray:
        """Full macro evaluation: (B, in) -> (B, out).

        Args:
            x: input activations.
            input_mask: (in,) keep-mask ANDed onto the inputs (CL dropout).
            output_mask: (out,) keep-mask gating row evaluation (RL
                dropout); masked outputs read 0 and cost nothing.
            rng: generator for analog noise.
            noise: pre-drawn (B, out) standard-normal read noise.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_features:
            raise ValueError(f"expected {self.in_features} inputs, got {x.shape[1]}")
        if input_mask is not None:
            x = x * np.asarray(input_mask, dtype=float)[None, :]
        x_q = self._quantize_inputs(x)
        analog = x_q @ self.stored_weight
        out = self._read_columns(analog, rng, noise=noise)
        active_in = (
            int(np.count_nonzero(input_mask))
            if input_mask is not None
            else self.in_features
        )
        active_out = (
            int(np.count_nonzero(output_mask))
            if output_mask is not None
            else self.out_features
        )
        if output_mask is not None:
            out = out * np.asarray(output_mask, dtype=float)[None, :]
        self._account(x.shape[0], active_in, active_out)
        return out

    def matvec_delta(
        self,
        previous: np.ndarray,
        delta_x: np.ndarray,
        changed: np.ndarray,
        output_mask: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        noise: np.ndarray | None = None,
    ) -> np.ndarray:
        """Compute-reuse read: update products through changed columns only.

        The change vector is quantised against the *pinned* input-DAC
        spec -- the same grid full reads use -- so delta accumulation and
        from-scratch evaluation agree to within read noise.

        Args:
            previous: (B, out) previously accumulated products.
            delta_x: (B, in) input change; only entries where ``changed``
                is True are driven.
            changed: (in,) boolean mask of driven input lines.
            output_mask: (out,) keep-mask gating row evaluation.
            rng: generator for analog noise.
            noise: pre-drawn (B, out) standard-normal read noise.

        Returns:
            (B, out) updated products.
        """
        previous = np.atleast_2d(np.asarray(previous, dtype=float))
        delta_x = np.atleast_2d(np.asarray(delta_x, dtype=float))
        changed = np.asarray(changed, dtype=bool).reshape(-1)
        if changed.size != self.in_features:
            raise ValueError("changed mask width mismatch")
        n_changed = int(changed.sum())
        active_out = (
            int(np.count_nonzero(output_mask))
            if output_mask is not None
            else self.out_features
        )
        if n_changed == 0:
            self._account(previous.shape[0], 0, active_out, adc_reads=0)
            return previous.copy()
        delta_q = self._quantize_inputs(delta_x[:, changed])
        analog = delta_q @ self.stored_weight[changed]
        delta_read = self._read_columns(analog, rng, noise=noise)
        out = previous + delta_read
        if output_mask is not None:
            out = out * np.asarray(output_mask, dtype=float)[None, :]
        self._account(previous.shape[0], n_changed, active_out)
        return out

    def matvec_many(
        self,
        x: np.ndarray,
        input_masks: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        noise: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fused evaluation of T stacked input batches: (T, B, in) -> (T, B, out).

        Equivalent to T :meth:`matvec` calls (one per leading slice) --
        same quantisation grid, same read model, same energy accounting --
        but with one quantise, one GEMM and one ADC pass over the whole
        stack.  This is the sample-major fast path the MC-Dropout engine
        drives when iterations are independent.

        Args:
            x: (T, B, in) stacked input activations.
            input_masks: (T, in) per-slice keep-masks (CL dropout), or
                None to drive every line.
            rng: generator for analog noise; variates are drawn in one
                C-order block, which matches T sequential per-slice draws.
            noise: pre-drawn (T, B, out) standard-normal read noise.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ValueError(
                f"expected (T, B, {self.in_features}) inputs, got {x.shape}"
            )
        n_stacked, batch = x.shape[0], x.shape[1]
        if input_masks is not None:
            input_masks = np.asarray(input_masks)
            if input_masks.shape != (n_stacked, self.in_features):
                raise ValueError(
                    f"expected ({n_stacked}, {self.in_features}) input masks, "
                    f"got {input_masks.shape}"
                )
            x = x * input_masks.astype(float)[:, None, :]
        # Pin the DAC grid exactly as the first per-slice matvec would.
        self._ensure_input_spec(x[0])
        x_q = self._quantize_inputs(x)
        analog = (
            x_q.reshape(n_stacked * batch, self.in_features) @ self.stored_weight
        ).reshape(n_stacked, batch, self.out_features)
        out = self._read_columns(analog, rng, noise=noise)
        if input_masks is not None:
            active_in_total = int(np.count_nonzero(input_masks)) * batch
        else:
            active_in_total = n_stacked * batch * self.in_features
        self.ledger.add(
            "cim_mac", active_in_total * self.out_features, self.config.mac_energy()
        )
        self.ledger.add(
            "column_adc",
            n_stacked * batch * self.out_features,
            self.config.node.adc_energy(self.config.adc_bits),
        )
        self.ledger.add(
            "input_dac", active_in_total, self.config.node.dac_energy_j
        )
        return out

    def _quantize_inputs(self, x: np.ndarray) -> np.ndarray:
        spec = self._ensure_input_spec(x)
        return dequantize(quantize(x, spec), spec)

    def _account(
        self, batch: int, active_in: int, active_out: int, adc_reads: int | None = None
    ) -> None:
        macs = batch * active_in * active_out
        self.ledger.add("cim_mac", macs, self.config.mac_energy())
        reads = batch * active_out if adc_reads is None else adc_reads
        self.ledger.add(
            "column_adc", reads, self.config.node.adc_energy(self.config.adc_bits)
        )
        self.ledger.add(
            "input_dac", batch * active_in, self.config.node.dac_energy_j
        )

    def ideal_matvec(self, x: np.ndarray) -> np.ndarray:
        """Noise-free, unquantised-input product with stored weights."""
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.stored_weight

    def ops_count(self) -> int:
        """Total MACs executed so far."""
        return self.ledger.count("cim_mac")

    def total_energy_j(self) -> float:
        return self.ledger.total_energy_j()
