"""Deterministic demo model + track world for serving quickstarts and CI.

``repro serve`` needs a network to serve out of the box; this module
builds a small MC-Dropout regression head whose weights depend only on
``seed``, so a client process (the CI parity step, the README curl
example) can rebuild the exact served model and verify bit-parity
against a local :func:`repro.serve.reference_run`.

:func:`demo_track_world` is the streaming-track analogue: a tiny but
complete localization world (room scene, depth camera, small particle
filter) that a client process can rebuild exactly to verify streamed
``/track/step`` responses bit-for-bit against
:func:`repro.serve.reference_track_run`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Dense, Dropout, ReLU, Sequential

DEMO_INPUTS = 24
DEMO_HIDDEN = 16
DEMO_OUTPUTS = 4
DEMO_DROPOUT = 0.5

# Spawn-key purposes of the demo streams.  Keyed SeedSequence derivation
# is collision-free across base seeds; the old additive offsets
# (``seed + 1``, ``seed + 100``) made e.g. demo_model(99)'s input batch
# share a stream with demo_model(0)'s -- the DET002 bug class.  The
# streams changed (once) at the migration and are pinned by regression
# tests in tests/test_serve.py.
_STREAM_DROPOUT = 0
_STREAM_INPUTS = 1


def _demo_rng(seed: int, *spawn_key: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=spawn_key)
    )


def demo_model(seed: int = 0) -> Sequential:
    """The quickstart network: Dense -> ReLU -> Dropout -> Dense."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(DEMO_INPUTS, DEMO_HIDDEN, rng),
            ReLU(),
            Dropout(DEMO_DROPOUT, rng=_demo_rng(seed, _STREAM_DROPOUT)),
            Dense(DEMO_HIDDEN, DEMO_OUTPUTS, rng),
        ]
    )


def demo_inputs(seed: int = 0, batch: int = 4) -> np.ndarray:
    """A deterministic (batch, DEMO_INPUTS) feature batch."""
    return _demo_rng(seed, _STREAM_INPUTS).normal(size=(batch, DEMO_INPUTS))


DEMO_TRACK_SCENE_SEED = 42
DEMO_TRACK_PARTICLES = 48


def demo_track_world(seed: int = DEMO_TRACK_SCENE_SEED):
    """A deterministic, deliberately small :class:`~repro.serve.TrackWorld`.

    Small enough (48 particles, 300 map points, 16x12 camera) that a
    per-track step costs ~1 ms, so thousands of live tracks are cheap in
    the bench and CI smokes, yet it exercises the full pipeline: scene,
    depth rendering, GMM map compression, CIM field evaluation.
    """
    from repro.scene.camera import PinholeCamera, body_camera_mount
    from repro.scene.scene import make_room_scene
    from repro.serve.tracks import TrackWorld

    rng = np.random.default_rng(seed)
    scene = make_room_scene(rng, n_furniture=3)
    map_cloud = scene.sample_point_cloud(300, rng, noise_std=0.01)
    camera = PinholeCamera.from_fov(16, 12, fov_x_deg=70.0)
    mount = body_camera_mount(np.deg2rad(25.0))
    return TrackWorld(
        map_cloud=map_cloud,
        camera=camera,
        session_seed=seed,
        localizer_kwargs=dict(
            camera_mount=mount,
            n_components=6,
            n_particles=DEMO_TRACK_PARTICLES,
            total_columns=60,
            max_pixels=16,
        ),
    )


def demo_track_measurements(
    n_steps: int = 6, seed: int = DEMO_TRACK_SCENE_SEED
) -> tuple[np.ndarray, list[np.ndarray], np.ndarray]:
    """Deterministic ``(controls, depths, truths)`` for the demo world.

    A drone orbit through the same scene :func:`demo_track_world` builds
    (same ``seed`` -> same scene), rendered with the same camera/mount,
    so streamed steps can be checked against ground truth and against
    :func:`repro.serve.reference_track_run`.
    """
    from repro.filtering.measurement import state_to_pose
    from repro.scene.camera import PinholeCamera, body_camera_mount
    from repro.scene.render import DepthRenderer
    from repro.scene.scene import make_room_scene
    from repro.scene.trajectory import drone_orbit_states, states_to_controls

    rng = np.random.default_rng(seed)
    scene = make_room_scene(rng, n_furniture=3)
    camera = PinholeCamera.from_fov(16, 12, fov_x_deg=70.0)
    mount = body_camera_mount(np.deg2rad(25.0))
    states = drone_orbit_states(
        center=np.zeros(3), radius=1.3, height=1.2, n_steps=n_steps
    )
    # The first step holds station (zero control); states_to_controls
    # needs at least two states, so a one-step request is just that.
    if n_steps == 1:
        controls = np.zeros((1, states.shape[1]))
    else:
        controls = np.vstack(
            [np.zeros(states.shape[1]), states_to_controls(states)]
        )[:n_steps]
    renderer = DepthRenderer(scene, camera)
    depths = [renderer.render(state_to_pose(s, mount)) for s in states]
    return controls, depths, states


__all__ = [
    "DEMO_DROPOUT",
    "DEMO_HIDDEN",
    "DEMO_INPUTS",
    "DEMO_OUTPUTS",
    "DEMO_TRACK_PARTICLES",
    "DEMO_TRACK_SCENE_SEED",
    "demo_inputs",
    "demo_model",
    "demo_track_measurements",
    "demo_track_world",
]
