"""Deterministic demo model for the serving quickstart and CI smoke.

``repro serve`` needs a network to serve out of the box; this module
builds a small MC-Dropout regression head whose weights depend only on
``seed``, so a client process (the CI parity step, the README curl
example) can rebuild the exact served model and verify bit-parity
against a local :func:`repro.serve.reference_run`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Dense, Dropout, ReLU, Sequential

DEMO_INPUTS = 24
DEMO_HIDDEN = 16
DEMO_OUTPUTS = 4
DEMO_DROPOUT = 0.5


def demo_model(seed: int = 0) -> Sequential:
    """The quickstart network: Dense -> ReLU -> Dropout -> Dense."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(DEMO_INPUTS, DEMO_HIDDEN, rng),
            ReLU(),
            Dropout(DEMO_DROPOUT, rng=np.random.default_rng(seed + 1)),
            Dense(DEMO_HIDDEN, DEMO_OUTPUTS, rng),
        ]
    )


def demo_inputs(seed: int = 0, batch: int = 4) -> np.ndarray:
    """A deterministic (batch, DEMO_INPUTS) feature batch."""
    return np.random.default_rng(seed + 100).normal(size=(batch, DEMO_INPUTS))


__all__ = [
    "DEMO_DROPOUT",
    "DEMO_HIDDEN",
    "DEMO_INPUTS",
    "DEMO_OUTPUTS",
    "demo_inputs",
    "demo_model",
]
