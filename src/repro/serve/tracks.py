"""Stateful streaming track sessions over the localization workload.

The paper's flagship workload -- particle-filter localization on the CIM
substrate -- is a *stream*: a drone sends measurements over time and
carries filter state between steps.  This module adds the service's
first stateful layer on top of the stateless ``/infer`` path:

- :class:`TrackWorld` -- the shared world (map cloud, camera, localizer
  configuration) every track session is built from, picklable so shard
  processes rebuild bit-identical sessions from one spec.
- :class:`TrackStore` -- the per-process execution engine.  It does NOT
  build one session per track: it keeps one shared prototype
  :class:`~repro.api.substrates.LocalizationSession` per substrate and
  swaps each track's state -- particles, its private RNG, and private
  copies of the backend's energy ledgers -- in and out around every
  step.  Per-track state is O(n_particles), which is what makes
  thousands of live tracks feasible in one process.
- :class:`TrackManager` -- lifecycle, placement, eviction and recovery:
  open/step/close with sticky routing of every track to one home shard,
  :class:`~repro.runtime.policy.TrackPolicy` admission (max live tracks,
  503 beyond) and idle-TTL eviction, micro-batching of concurrent steps
  from *different* tracks on the same shard through the existing
  :class:`~repro.serve.service.Batcher`, and crash recovery that either
  replays the track's buffered measurement log on a fresh shard or
  re-initializes the filter and flags ``state_lost`` on the next step
  response.

The stream determinism contract (:func:`reference_track_run` is the
oracle): a track stepped measurement-by-measurement is bit-for-bit equal
-- estimates and cumulative energy/ops via scoped ledgers -- to a
one-shot ``LocalizationSession.run()`` over the same measurement
sequence on an identically built session.  Two mechanisms carry it:

1. Every source of randomness in a localization step flows through the
   caller-provided generator, so a per-track generator seeded once at
   open and carried across steps reproduces the one-shot run exactly.
2. Each track owns deep copies of the backend's post-calibration
   ledgers (the exact state a fresh session starts serving with).  A
   step swaps them into the backend's ledger attributes, so cumulative
   metering is the same single ``since(open_mark)`` subtraction the
   one-shot run performs -- never a sum of per-step float deltas, which
   would not be bit-exact.
"""

from __future__ import annotations

import asyncio
import copy
import time
import uuid
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.api.results import InferenceResult
from repro.api.substrates import LocalizationSession, get_substrate
from repro.circuits.energy import EnergyLedger
from repro.core.tiling import TiledCIMBackend
from repro.filtering.measurement import CIMArrayBackend, DigitalGMMBackend
from repro.runtime.policy import BatchPolicy, TrackPolicy
from repro.serve.types import (
    RequestExecutionError,
    ServiceOverloaded,
    TrackError,
    TrackInit,
    TrackOpenRequest,
    TrackStepRequest,
    TrackStepResponse,
    WorkerCrashed,
)

# The pseudo-home used when tracks execute in-process (no shard pool).
LOCAL_HOME = (-1, -1)

_TOMBSTONE_LIMIT = 4096
# Per-logged-step container overhead added to the array payload bytes.
_LOG_ENTRY_OVERHEAD = 256


@dataclass(frozen=True)
class TrackWorld:
    """Everything needed to rebuild identical localization sessions.

    One world is shared by the whole service (and crosses the spawn
    boundary once inside the :class:`~repro.serve.workers.WorkerSpec`);
    every track on every shard runs against sessions built from it with
    the same ``session_seed``, which is what makes shards bit-for-bit
    interchangeable for streams.
    """

    map_cloud: np.ndarray
    camera: Any
    session_seed: int = 0
    localizer_kwargs: dict = field(default_factory=dict)

    def build_session(self, substrate: str) -> LocalizationSession:
        """A freshly calibrated session for ``substrate`` (the oracle's
        and every prototype's construction path)."""
        return get_substrate(substrate).localization_session(
            self.map_cloud,
            self.camera,
            rng=np.random.default_rng(self.session_seed),
            **self.localizer_kwargs,
        )


def reference_track_run(
    world: TrackWorld,
    substrate: str,
    init: TrackInit,
    seed: int,
    measurements: tuple[np.ndarray, list[np.ndarray], np.ndarray],
) -> InferenceResult:
    """The stream determinism oracle.

    One generator seeded with the track seed drives the init and the
    whole one-shot run -- exactly the generator usage of a served track
    stepped measurement-by-measurement.  ``measurements`` is the
    ``(controls, depths, truth)`` tuple ``LocalizationSession.run``
    takes.
    """
    session = world.build_session(substrate)
    rng = np.random.default_rng(int(seed))
    init.apply(session, rng)
    return session.run(measurements, rng=rng)


def _ledger_cells(backend: Any) -> list[tuple[Any, str]]:
    """The attribute locations where a backend's ledgers live.

    Swapping these cells is how a track's private ledgers receive the
    backend's metering during its step.  The cell order for tiled
    backends matches ``TiledInverterArrayMap.merged_ledger()`` so the
    merged view below reproduces the backend's own ledger view exactly.
    """
    if isinstance(backend, CIMArrayBackend):
        return [(backend.array, "ledger")]
    if isinstance(backend, DigitalGMMBackend):
        return [(backend, "_ledger")]
    if isinstance(backend, TiledCIMBackend):
        return [
            (array, "ledger")
            for array in backend.tiled_map._arrays.values()
        ]
    raise TypeError(
        f"no ledger cells known for backend {type(backend).__name__}"
    )


def _merged_view(ledgers: Sequence[EnergyLedger]) -> EnergyLedger:
    """The ledger view a backend would expose over these cells.

    A single cell is returned as-is (merging into a fresh ledger would
    reorder operations to sorted insertion order and change the
    summation order of ``total_energy_j`` -- a bit-parity break); tiled
    cells merge exactly like the backend's own ``merged_ledger()``.
    """
    if len(ledgers) == 1:
        return ledgers[0]
    merged = EnergyLedger(label="track")
    for ledger in ledgers:
        merged.merge(ledger)
    return merged


def decode_track_outcomes(encoded: Sequence[tuple]) -> list[Any]:
    """Decode wire-encoded track outcomes into payloads / exceptions.

    The encoding -- ``("ok", payload)`` / ``("track_error", (kind,
    message))`` / ``("error", message)`` -- is shared by the in-process
    store path and the shard pipe, so both deployment shapes fail the
    same way.
    """
    outcomes: list[Any] = []
    for tag, payload in encoded:
        if tag == "ok":
            outcomes.append(payload)
        elif tag == "track_error":
            kind, message = payload
            outcomes.append(TrackError(kind, message))
        else:
            outcomes.append(RequestExecutionError(str(payload)))
    return outcomes


class _StoredTrack:
    """One track's swap-in state inside a :class:`TrackStore`."""

    __slots__ = ("substrate", "rng", "particles", "ledgers", "open_mark", "steps")

    def __init__(self, substrate: str, rng: np.random.Generator):
        self.substrate = substrate
        self.rng = rng
        self.particles: Any = None
        self.ledgers: list[EnergyLedger] = []
        self.open_mark: Any = None
        self.steps = 0


class TrackStore:
    """Per-process track execution over shared prototype sessions.

    One prototype :class:`LocalizationSession` per substrate is built
    (and calibrated) once; its post-calibration ledgers are deep-copied
    as the baseline every new track starts from -- the exact ledger
    state a fresh reference session begins serving with.  All methods
    must be called from one thread at a time (the manager serializes
    through a single-thread executor in-process, and shard processes are
    serial by construction).
    """

    def __init__(self, world: TrackWorld, substrates: Sequence[str]):
        self.world = world
        self._prototypes: dict[str, tuple[LocalizationSession, list, list]] = {}
        for name in substrates:
            resolved = get_substrate(name).name
            if resolved in self._prototypes:
                continue
            session = world.build_session(resolved)
            cells = _ledger_cells(session.localizer.field_backend)
            baseline = [
                copy.deepcopy(getattr(owner, attr)) for owner, attr in cells
            ]
            self._prototypes[resolved] = (session, cells, baseline)
        self._tracks: dict[str, _StoredTrack] = {}

    @property
    def substrates(self) -> list[str]:
        return sorted(self._prototypes)

    def live_count(self) -> int:
        return len(self._tracks)

    def open(
        self, track_id: str, substrate: str, init: TrackInit, seed: int
    ) -> dict:
        """(Re-)initialize a track's filter state; idempotent on re-open
        so crash recovery can always start from a clean init."""
        resolved = get_substrate(substrate).name
        if resolved not in self._prototypes:
            raise KeyError(
                f"no track prototype for substrate {resolved!r}; "
                f"serving {self.substrates}"
            )
        session, cells, baseline = self._prototypes[resolved]
        track = _StoredTrack(resolved, np.random.default_rng(int(seed)))
        init.apply(session, track.rng)
        track.particles = session.localizer.filter.particles
        track.ledgers = [copy.deepcopy(ledger) for ledger in baseline]
        track.open_mark = _merged_view(track.ledgers).snapshot()
        self._tracks[track_id] = track
        return {
            "track_id": track_id,
            "substrate": resolved,
            "n_particles": int(session.localizer.n_particles),
        }

    def step_batch(self, items: Sequence[tuple]) -> list[tuple]:
        """Execute one micro-batch of steps, one wire-encoded outcome per
        item (items may mix tracks and substrates; same-track items
        execute in list order)."""
        encoded: list[tuple] = []
        for track_id, control, depth, truth in items:
            try:
                encoded.append(
                    ("ok", self._step_one(track_id, control, depth, truth))
                )
            except TrackError as error:
                encoded.append(("track_error", (error.kind, str(error))))
            except Exception as error:
                encoded.append(
                    ("error", f"{type(error).__name__}: {error}")
                )
        return encoded

    def _step_one(
        self,
        track_id: str,
        control: np.ndarray,
        depth: np.ndarray,
        truth: Optional[np.ndarray],
    ) -> dict:
        track = self._tracks.get(track_id)
        if track is None:
            raise TrackError(
                "unknown", f"track {track_id!r} is not open on this shard"
            )
        session, cells, _ = self._prototypes[track.substrate]
        localizer = session.localizer
        pf = localizer.filter
        step_mark = _merged_view(track.ledgers).snapshot()
        pf.particles = track.particles
        pf.history = []
        # DET004 audit: the ledger-cell swap must restore the prototype
        # ledgers on every exit path -- a raising step would otherwise
        # leave this track's ledgers wired into the shared prototype,
        # corrupting every other track's energy accounting on the shard.
        saved = [getattr(owner, attr) for owner, attr in cells]
        for (owner, attr), ledger in zip(cells, track.ledgers):
            setattr(owner, attr, ledger)
        try:
            diagnostics = localizer.step(
                np.asarray(control, dtype=float),
                np.asarray(depth, dtype=float),
                track.rng,
            )
        finally:
            for (owner, attr), ledger in zip(cells, saved):
                setattr(owner, attr, ledger)
        track.particles = pf.particles
        track.steps += 1
        view = _merged_view(track.ledgers)
        cumulative = view.since(track.open_mark)
        step_scope = view.since(step_mark)
        estimate = np.asarray(diagnostics.estimate, dtype=float)
        error_m = None
        if truth is not None:
            truth_state = np.asarray(truth, dtype=float).reshape(-1)
            error_m = float(
                np.linalg.norm(estimate[:3] - truth_state[:3])
            )
        return {
            "estimate": estimate,
            "ess": float(diagnostics.ess),
            "resampled": bool(diagnostics.resampled),
            "log_evidence": float(diagnostics.log_evidence),
            "spread": float(diagnostics.spread),
            "error_m": error_m,
            "energy_j": cumulative.total_energy_j(),
            "ops_executed": cumulative.total_count(),
            "energy_breakdown_j": {
                op: cumulative.energy(op) for op in cumulative.operations
            },
            "step_energy_j": step_scope.total_energy_j(),
            "step_ops": step_scope.total_count(),
            "substrate": track.substrate,
        }

    def close(self, track_id: str) -> dict:
        track = self._tracks.pop(track_id, None)
        if track is None:
            raise TrackError(
                "unknown", f"track {track_id!r} is not open on this shard"
            )
        return {
            "track_id": track_id,
            "substrate": track.substrate,
            "steps": track.steps,
        }

    def drop(self, track_id: str) -> bool:
        """Silent eviction (TTL sweep): no error when already gone."""
        return self._tracks.pop(track_id, None) is not None

    def describe(self) -> dict:
        return {
            "substrates": self.substrates,
            "live_tracks": self.live_count(),
        }


class LocalTrackBackend:
    """In-process track execution behind the manager's async interface.

    A single-thread executor serializes every store call: the prototype
    swap-in/swap-out must never interleave.  There is one pseudo-home
    (:data:`LOCAL_HOME`), always ready; crash recovery never triggers
    because the "shard" is this process.
    """

    spawn_timeout_s = 5.0

    def __init__(self, store: TrackStore):
        self.store = store
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-tracks"
        )

    async def _call(self, fn: Any, *args: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    def ready_homes(self) -> list[tuple[int, int]]:
        return [LOCAL_HOME]

    async def open(
        self,
        home: tuple[int, int],
        track_id: str,
        substrate: str,
        init: TrackInit,
        seed: int,
    ) -> dict:
        return await self._call(self.store.open, track_id, substrate, init, seed)

    async def steps(
        self, home: tuple[int, int], items: Sequence[tuple]
    ) -> list[Any]:
        encoded = await self._call(self.store.step_batch, list(items))
        return decode_track_outcomes(encoded)

    async def close(self, home: tuple[int, int], track_id: str) -> dict:
        return await self._call(self.store.close, track_id)

    def describe(self) -> dict:
        return {"mode": "local", **self.store.describe()}

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)


class ShardedTrackBackend:
    """Track execution over a :class:`~repro.serve.workers.WorkerPool`.

    Homes are ``(shard index, generation)`` pairs: a respawned shard has
    a new generation, so a track homed on the dead one can never be
    silently served by its fresh-state replacement -- dispatch raises
    :class:`~repro.serve.types.WorkerCrashed` and the manager recovers
    explicitly (replay or ``state_lost``).
    """

    def __init__(self, pool: Any):
        self._pool = pool

    @property
    def spawn_timeout_s(self) -> float:
        return self._pool.policy.spawn_timeout_s

    def ready_homes(self) -> list[tuple[int, int]]:
        return self._pool.ready_homes()

    async def open(
        self,
        home: tuple[int, int],
        track_id: str,
        substrate: str,
        init: TrackInit,
        seed: int,
    ) -> dict:
        index, generation = home
        [outcome] = await self._pool.execute_track(
            index, generation, "open", (track_id, substrate, init, int(seed))
        )
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    async def steps(
        self, home: tuple[int, int], items: Sequence[tuple]
    ) -> list[Any]:
        index, generation = home
        return await self._pool.execute_track(
            index, generation, "steps", list(items), n_items=len(items)
        )

    async def close(self, home: tuple[int, int], track_id: str) -> dict:
        index, generation = home
        [outcome] = await self._pool.execute_track(
            index, generation, "close", track_id
        )
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def describe(self) -> dict:
        return {"mode": "sharded", "shards": self._pool.policy.workers}

    def shutdown(self) -> None:
        pass  # the pool's lifecycle belongs to the service


class _HomeStepBackend:
    """Adapter giving one home's step path the Batcher execute interface.

    The Batcher hands it ``(track_id, control, depth, truth)`` wire
    items assembled from concurrent :class:`TrackStepRequest`\\ s; dict
    payloads come back wrapped as :class:`TrackStepResponse` (manager
    fills in step index and recovery flags after the future resolves).
    """

    def __init__(self, backend: Any, home: tuple[int, int]):
        self._backend = backend
        self._home = home

    async def execute(self, key: Any, items: Sequence[tuple]) -> list[Any]:
        outcomes = await self._backend.steps(self._home, items)
        wrapped: list[Any] = []
        for item, outcome in zip(items, outcomes):
            if isinstance(outcome, Exception):
                wrapped.append(outcome)
            else:
                wrapped.append(
                    TrackStepResponse(
                        track_id=item[0],
                        step_index=0,  # filled by the manager on ack
                        estimate=outcome["estimate"],
                        ess=outcome["ess"],
                        resampled=outcome["resampled"],
                        log_evidence=outcome["log_evidence"],
                        spread=outcome["spread"],
                        energy_j=outcome["energy_j"],
                        ops_executed=outcome["ops_executed"],
                        energy_breakdown_j=outcome["energy_breakdown_j"],
                        step_energy_j=outcome["step_energy_j"],
                        step_ops=outcome["step_ops"],
                        substrate=outcome["substrate"],
                        error_m=outcome["error_m"],
                        batch_size=len(items),
                    )
                )
        return wrapped


@dataclass
class TrackStats:
    """Manager-level lifecycle counters exposed via ``/stats``."""

    opened: int = 0
    rejected: int = 0
    closed: int = 0
    expired: int = 0
    steps: int = 0
    recovered_replay: int = 0
    recovered_reinit: int = 0
    replay_dropped: int = 0


class _LiveTrack:
    """Manager-side record of one live track (placement + replay log)."""

    __slots__ = (
        "track_id",
        "substrate",
        "init",
        "seed",
        "home",
        "lock",
        "step_index",
        "log",
        "log_bytes",
        "replayable",
        "last_used",
        "state_lost_pending",
        "replayed_pending",
    )

    def __init__(
        self,
        track_id: str,
        substrate: str,
        init: TrackInit,
        seed: int,
        home: tuple[int, int],
        replayable: bool,
    ):
        self.track_id = track_id
        self.substrate = substrate
        self.init = init
        self.seed = seed
        self.home = home
        self.lock = asyncio.Lock()
        self.step_index = 0
        self.log: list[tuple] = []
        self.log_bytes = 0
        self.replayable = replayable
        self.last_used = time.monotonic()
        self.state_lost_pending = False
        self.replayed_pending = 0


class TrackManager:
    """Lifecycle, placement, eviction and recovery for live tracks.

    Must be driven from a single event loop (the service's).  Steps of
    one track are serialized by its per-track lock -- the determinism
    contract requires in-order execution -- while steps of *different*
    tracks homed on the same shard coalesce into micro-batches through
    one :class:`~repro.serve.service.Batcher` per home.
    """

    def __init__(
        self,
        backend: LocalTrackBackend | ShardedTrackBackend,
        policy: TrackPolicy | None = None,
        batch: BatchPolicy | None = None,
        substrates: Sequence[str] | None = None,
    ):
        from repro.serve.service import ServiceStats

        self._backend = backend
        self.policy = policy or TrackPolicy()
        self.batch_policy = batch or BatchPolicy()
        self._substrates = (
            None
            if substrates is None
            else {get_substrate(name).name for name in substrates}
        )
        self._tracks: dict[str, _LiveTrack] = {}
        self._tombstones: OrderedDict[str, str] = OrderedDict()
        self._batchers: dict[tuple[int, int], Any] = {}
        self._sweeper: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.track_stats = TrackStats()
        # Step-batching counters live in a private ServiceStats so the
        # shared Batcher can account them without touching /infer's.
        self.step_stats = ServiceStats()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if self._sweeper is None:
            self._sweeper = self._loop.create_task(self._sweep_loop())

    async def stop(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        for batcher in self._batchers.values():
            await batcher.close()
        self._batchers.clear()
        self._tracks.clear()
        self._backend.shutdown()

    # -- placement ---------------------------------------------------------

    async def _pick_home(self) -> tuple[int, int]:
        """The ready home with the fewest live tracks; waits out shard
        warm-up/respawn up to the backend's spawn deadline."""
        assert self._loop is not None
        deadline = self._loop.time() + self._backend.spawn_timeout_s
        while True:
            homes = self._backend.ready_homes()
            if homes:
                counts = Counter(
                    record.home for record in self._tracks.values()
                )
                return min(homes, key=lambda h: (counts.get(h, 0), h))
            if self._loop.time() >= deadline:
                raise WorkerCrashed(
                    -1,
                    0,
                    message=(
                        "no live worker shard available for track "
                        "placement; retry"
                    ),
                )
            await asyncio.sleep(0.05)

    def _batcher(self, home: tuple[int, int]) -> Any:
        batcher = self._batchers.get(home)
        if batcher is None:
            from repro.serve.service import Batcher

            batcher = Batcher(
                ("steps", f"{home[0]}:{home[1]}"),
                self.batch_policy,
                _HomeStepBackend(self._backend, home),
                self.step_stats,
            )
            batcher.start()
            self._batchers[home] = batcher
        return batcher

    # -- lookup ------------------------------------------------------------

    def _lookup(self, track_id: str) -> _LiveTrack:
        record = self._tracks.get(track_id)
        if record is not None:
            return record
        reason = self._tombstones.get(track_id)
        if reason == "expired":
            raise TrackError(
                "expired",
                f"track {track_id!r} expired after idling past the "
                f"{self.policy.idle_ttl_s:.0f}s TTL; open a new track",
            )
        if reason == "closed":
            raise TrackError("closed", f"track {track_id!r} is closed")
        raise TrackError("unknown", f"unknown track {track_id!r}")

    def _tombstone(self, track_id: str, reason: str) -> None:
        self._tombstones[track_id] = reason
        self._tombstones.move_to_end(track_id)
        while len(self._tombstones) > _TOMBSTONE_LIMIT:
            self._tombstones.popitem(last=False)

    # -- open / step / close ----------------------------------------------

    async def open(self, request: TrackOpenRequest) -> dict:
        """Admit and place one track; 503 beyond ``max_tracks``."""
        resolved = get_substrate(request.substrate).name
        if self._substrates is not None and resolved not in self._substrates:
            raise KeyError(
                f"no track prototype for substrate {resolved!r}; "
                f"serving tracks on {sorted(self._substrates)}"
            )
        if len(self._tracks) >= self.policy.max_tracks:
            self.track_stats.rejected += 1
            raise ServiceOverloaded(
                len(self._tracks), self.policy.max_tracks
            )
        track_id = request.track_id or f"track-{uuid.uuid4().hex[:12]}"
        if track_id in self._tracks:
            raise ValueError(f"track {track_id!r} is already open")
        home = await self._pick_home()
        record = _LiveTrack(
            track_id,
            request.substrate,
            request.init,
            request.seed,
            home,
            replayable=self.policy.replay_log_steps > 0,
        )
        # Reserve the id (and hold the track lock) across the backend
        # call so a concurrent same-id open or step cannot interleave.
        self._tracks[track_id] = record
        async with record.lock:
            try:
                result = await self._backend.open(
                    home, track_id, request.substrate, request.init,
                    request.seed,
                )
            except BaseException:
                self._tracks.pop(track_id, None)
                raise
        record.substrate = result["substrate"]
        self._tombstones.pop(track_id, None)
        self.track_stats.opened += 1
        return {
            **result,
            "seed": request.seed,
            "home_shard": None if home == LOCAL_HOME else home[0],
            "replay": record.replayable,
        }

    async def step(self, request: TrackStepRequest) -> TrackStepResponse:
        """Serve one measurement; recovers the track first when its home
        shard died (replay the log, or re-init with ``state_lost``)."""
        record = self._lookup(request.track_id)
        async with record.lock:
            if self._tracks.get(request.track_id) is not record:
                self._lookup(request.track_id)  # evicted while waiting
            record.last_used = time.monotonic()
            recoveries = 0
            while True:
                if record.home not in self._backend.ready_homes():
                    await self._recover(record)
                try:
                    response = await self._submit_step(record, request)
                    break
                except WorkerCrashed:
                    # The home died mid-step.  The step was never acked
                    # (so it is not in the replay log): recover and
                    # re-execute it -- deterministic either way.
                    recoveries += 1
                    if recoveries > 3:
                        raise
            record.step_index += 1
            record.last_used = time.monotonic()
            response.step_index = record.step_index
            response.state_lost = record.state_lost_pending
            response.replayed_steps = record.replayed_pending
            record.state_lost_pending = False
            record.replayed_pending = 0
            self._log_step(record, request)
            self.track_stats.steps += 1
            return response

    async def _submit_step(
        self, record: _LiveTrack, request: TrackStepRequest
    ) -> TrackStepResponse:
        from repro.serve.service import _Pending

        assert self._loop is not None
        pending = _Pending(
            request=request,
            future=self._loop.create_future(),
            admitted_at=self._loop.time(),
        )
        self._batcher(record.home).put(pending)
        return await pending.future

    async def _recover(self, record: _LiveTrack) -> None:
        """Re-home a track whose shard died: replay the buffered
        measurement log, or re-initialize and flag ``state_lost``."""
        home = await self._pick_home()
        await self._backend.open(
            home, record.track_id, record.substrate, record.init, record.seed
        )
        if record.replayable:
            if record.log:
                outcomes = await self._backend.steps(home, list(record.log))
                for outcome in outcomes:
                    if isinstance(outcome, Exception):
                        raise outcome
            record.home = home
            record.replayed_pending = len(record.log)
            self.track_stats.recovered_replay += 1
        else:
            # The log was dropped (or disabled): the filter restarts
            # from the track's init, and the response says so.
            record.home = home
            record.step_index = 0
            record.log = []
            record.log_bytes = 0
            record.replayable = self.policy.replay_log_steps > 0
            record.state_lost_pending = True
            record.replayed_pending = 0
            self.track_stats.recovered_reinit += 1

    def _log_step(self, record: _LiveTrack, request: TrackStepRequest) -> None:
        """Buffer an *acked* step for crash replay, within the policy's
        step and byte bounds; outgrowing them sheds the log (the track
        stays live but falls back to ``state_lost`` recovery)."""
        if not record.replayable:
            return
        entry_bytes = (
            request.control.nbytes
            + request.depth.nbytes
            + (0 if request.truth is None else request.truth.nbytes)
            + _LOG_ENTRY_OVERHEAD
        )
        record.log.append(request.wire_item())
        record.log_bytes += entry_bytes
        if (
            len(record.log) > self.policy.replay_log_steps
            or record.log_bytes > self.policy.max_track_bytes
        ):
            record.log = []
            record.log_bytes = 0
            record.replayable = False
            self.track_stats.replay_dropped += 1

    async def close(self, track_id: str) -> dict:
        record = self._lookup(track_id)
        async with record.lock:
            if self._tracks.get(track_id) is not record:
                self._lookup(track_id)
            if record.home in self._backend.ready_homes():
                try:
                    await self._backend.close(record.home, track_id)
                except (TrackError, ServiceOverloaded):
                    pass  # the shard-side state is gone either way
            self._tracks.pop(track_id, None)
            self._tombstone(track_id, "closed")
            self.track_stats.closed += 1
            return {
                "track_id": track_id,
                "substrate": record.substrate,
                "steps": record.step_index,
                "closed": True,
            }

    # -- eviction ----------------------------------------------------------

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.policy.sweep_interval_s)
            await self.sweep_idle()

    async def sweep_idle(self) -> int:
        """Evict tracks idle past the TTL; returns the eviction count."""
        now = time.monotonic()
        expired = [
            track_id
            for track_id, record in self._tracks.items()
            if now - record.last_used > self.policy.idle_ttl_s
        ]
        evicted = 0
        for track_id in expired:
            record = self._tracks.get(track_id)
            if record is None:
                continue
            async with record.lock:
                if self._tracks.get(track_id) is not record:
                    continue
                if (
                    time.monotonic() - record.last_used
                    <= self.policy.idle_ttl_s
                ):
                    continue  # a step slipped in while we waited
                self._tracks.pop(track_id, None)
                self._tombstone(track_id, "expired")
                self.track_stats.expired += 1
                evicted += 1
                if record.home in self._backend.ready_homes():
                    try:
                        await self._backend.close(record.home, track_id)
                    except (TrackError, ServiceOverloaded,
                            RequestExecutionError):
                        pass
        return evicted

    # -- introspection -----------------------------------------------------

    def live_count(self) -> int:
        return len(self._tracks)

    def describe(self) -> dict:
        return {
            "max_tracks": self.policy.max_tracks,
            "idle_ttl_s": self.policy.idle_ttl_s,
            "replay_log_steps": self.policy.replay_log_steps,
            "max_track_bytes": self.policy.max_track_bytes,
            "backend": self._backend.describe(),
        }

    def stats_snapshot(self) -> dict:
        stats = self.track_stats
        return {
            "live": len(self._tracks),
            "opened": stats.opened,
            "closed": stats.closed,
            "expired": stats.expired,
            "rejected": stats.rejected,
            "steps": stats.steps,
            "recovered_replay": stats.recovered_replay,
            "recovered_reinit": stats.recovered_reinit,
            "replay_dropped": stats.replay_dropped,
            "step_batches": self.step_stats.batches,
            "mean_step_batch": self.step_stats.mean_batch_size(),
            "max_step_batch": self.step_stats.max_batch_observed,
            "log_bytes": sum(
                record.log_bytes for record in self._tracks.values()
            ),
        }


class TrackHandle:
    """Caller-side handle for one open track (``Service.open_track``)."""

    def __init__(self, manager: TrackManager, track_id: str, substrate: str):
        self._manager = manager
        self.track_id = track_id
        self.substrate = substrate

    async def step(
        self,
        control: np.ndarray,
        depth: np.ndarray,
        truth: np.ndarray | None = None,
    ) -> TrackStepResponse:
        return await self._manager.step(
            TrackStepRequest(
                track_id=self.track_id,
                control=control,
                depth=depth,
                truth=truth,
            )
        )

    async def close(self) -> dict:
        return await self._manager.close(self.track_id)


__all__ = [
    "LOCAL_HOME",
    "LocalTrackBackend",
    "ShardedTrackBackend",
    "TrackHandle",
    "TrackManager",
    "TrackStats",
    "TrackStore",
    "TrackWorld",
    "decode_track_outcomes",
    "reference_track_run",
]
