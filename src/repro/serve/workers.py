"""Sharded worker backend: micro-batches fanned out over processes.

The single-process service executes every micro-batch on one CPU core
inside the event-loop process, so throughput is capped by the GIL and
one engine's arithmetic.  This module scales the same deterministic
contract horizontally:

- :class:`WorkerPool` spawns ``ShardPolicy.workers`` shard processes
  (``multiprocessing`` *spawn* start method, daemonic so they can never
  outlive the parent).  Each shard warms its **own** calibrated
  :class:`~repro.serve.pool.SessionPool` per (substrate, model) pair
  from the :class:`WorkerSpec` -- sessions are rebuilt from the same
  ``session_seed``, so every shard is bit-for-bit interchangeable with
  the in-process pool and with :func:`~repro.serve.execution.
  reference_run`.
- Assembled micro-batches are routed to the **least-loaded live shard**,
  tie-broken toward a shard that has already served the batch's
  substrate (``ShardPolicy.affinity``) so calibration state stays warm;
  request items and responses cross stdlib pipes as plain picklable
  payloads.
- **Worker death is detected** (pipe EOF from a dedicated reader thread
  per shard): every in-flight request on the dead shard fails with
  :class:`~repro.serve.types.WorkerCrashed` -- a retryable 503, never a
  hung future -- the shard is respawned, and subsequent requests keep
  matching the reference bit-for-bit.
- Shutdown sends every shard a stop message, then joins with the
  ``ShardPolicy.join_timeout_s`` deadline, escalating terminate -> kill;
  an ``atexit`` guard runs the same teardown if the owner never calls
  :meth:`WorkerPool.stop`, so Ctrl-C cannot leak orphaned children.
  A shard that loses its parent pipe exits on its own (EOF), covering
  even hard parent kills.

Metering stays exact because the scoped ledgers live in the worker that
executed the batch; the responses carry per-request energy/ops back over
the pipe like any other result field.
"""

from __future__ import annotations

import asyncio
import atexit
import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.nn.sequential import Sequential
from repro.runtime.policy import ShardPolicy
from repro.serve.execution import Outcome, RequestItem, run_grouped
from repro.serve.pool import SessionPool
from repro.serve.types import (
    InferenceResponse,
    RequestExecutionError,
    TrackError,
    WorkerCrashed,
)

PairKey = tuple[str, str]

_STARTUP_FAILURE_MESSAGE = (
    "worker shards keep dying during warm-up; giving up on respawns. "
    "Common cause: the parent process's __main__ is not importable "
    "(interactive/stdin scripts cannot use the multiprocessing 'spawn' "
    "start method) -- run from a file, `python -m repro serve`, or use "
    "workers=0 for in-process serving."
)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned shard needs to rebuild the served sessions.

    The spec crosses the process boundary once, at spawn; the shard then
    owns private session pools built exactly like the in-process ones
    (same calibration, same ``session_seed``), which is what makes every
    shard bit-for-bit interchangeable.
    """

    models: dict[str, Sequential]
    substrates: tuple[str, ...]
    n_iterations: int = 30
    calibration_inputs: np.ndarray | None = None
    session_seed: int = 0
    # Streaming tracks (repro.serve.tracks): when a world is given, the
    # shard also warms one TrackStore over these substrates before
    # reporting ready, so sticky-routed track state can live shard-side.
    track_world: Any = None
    track_substrates: tuple[str, ...] | None = None

    def keys(self) -> list[PairKey]:
        return [
            (substrate, model)
            for substrate in self.substrates
            for model in self.models
        ]


def _worker_main(spec: WorkerSpec, conn: Any) -> None:
    """Shard process entry point: warm the pools, serve batches forever.

    Protocol (parent -> shard): ``("batch", job_id, key, items)``,
    ``("track", job_id, op, payload)`` with op open/steps/close,
    ``("stop",)``, ``("exit", code)`` (chaos/test hook: die instantly).
    Shard -> parent: ``("ready", pid)`` once warmed, then one
    ``("result", job_id, encoded_outcomes)`` per batch.  Outcomes are
    encoded as ``("ok", payload)`` / ``("track_error", (kind, message))``
    / ``("error", message)`` tuples so nothing unpicklable ever crosses
    the pipe.
    """
    # The shard's message loop is strictly serial (one batch at a time),
    # so a pool width above 1 would only warm clones that can never run;
    # shard-level concurrency comes from the number of shards instead.
    pools = {
        key: SessionPool(
            key[0],
            spec.models[key[1]],
            n_iterations=spec.n_iterations,
            size=1,
            calibration_inputs=spec.calibration_inputs,
            session_seed=spec.session_seed,
        )
        for key in spec.keys()
    }
    track_store = None
    if spec.track_world is not None:
        from repro.serve.tracks import TrackStore

        track_store = TrackStore(
            spec.track_world,
            spec.track_substrates or spec.substrates,
        )
    conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent died: exit rather than linger as an orphan
        kind = message[0]
        if kind == "stop":
            break
        if kind == "exit":  # chaos/test hook: die without cleanup
            conn.close()
            os._exit(int(message[1]))
        if kind == "track":
            _, job_id, op, payload = message
            try:
                conn.send(
                    ("result", job_id, _run_track_op(track_store, op, payload))
                )
            except (OSError, ValueError, BrokenPipeError):
                break
            continue
        if kind != "batch":
            continue
        _, job_id, key, items = message
        try:
            pool = pools[tuple(key)]
            session = pool.acquire_nowait()
            try:
                outcomes = run_grouped(session, key[0], key[1], items)
            finally:
                pool.release(session)
            encoded: list[tuple[str, Any]] = [
                ("ok", outcome)
                if isinstance(outcome, InferenceResponse)
                else ("error", str(outcome))
                for outcome in outcomes
            ]
        except Exception as error:  # pool-level failure: fail every item
            encoded = [
                ("error", f"{type(error).__name__}: {error}")
            ] * len(items)
        try:
            conn.send(("result", job_id, encoded))
        except (OSError, ValueError, BrokenPipeError):
            break
    conn.close()


def _run_track_op(track_store: Any, op: str, payload: Any) -> list:
    """Execute one shard-side track operation, wire-encoded.

    The encoding matches the batch path -- a list of ``("ok", payload)``
    / ``("track_error", (kind, message))`` / ``("error", message)``
    tuples -- so the parent's result plumbing needs no new message kind.
    ``steps`` payloads are per-item lists; ``open``/``close`` encode one
    outcome.
    """
    n_outcomes = len(payload) if op == "steps" else 1
    try:
        if track_store is None:
            raise RuntimeError("track serving is not enabled on this shard")
        if op == "open":
            track_id, substrate, init, seed = payload
            return [("ok", track_store.open(track_id, substrate, init, seed))]
        if op == "steps":
            return track_store.step_batch(payload)
        if op == "close":
            return [("ok", track_store.close(payload))]
        raise RuntimeError(f"unknown track op {op!r}")
    except TrackError as error:
        return [("track_error", (error.kind, str(error)))] * n_outcomes
    except Exception as error:
        return [("error", f"{type(error).__name__}: {error}")] * n_outcomes


@dataclass
class _Inflight:
    """One dispatched micro-batch awaiting its shard's result."""

    loop: asyncio.AbstractEventLoop
    future: asyncio.Future
    n_requests: int
    sent_at: float


class WorkerHandle:
    """Parent-side view of one shard: process, pipe, live counters."""

    def __init__(self, index: int, process: Any, conn: Any, generation: int = 0):
        self.index = index
        # Spawn-unique id: a respawned shard gets a new generation, so
        # state pinned to the dead one (live tracks) can never be
        # silently served by its fresh-state replacement.
        self.generation = generation
        self.process = process
        self.conn = conn
        self.ready = False
        self.alive = True
        self.inflight: dict[int, _Inflight] = {}
        self.dispatched_batches = 0
        self.completed_batches = 0
        self.failed_batches = 0
        self.substrates: set[str] = set()
        self.started_at = time.monotonic()
        self.last_dispatch_at: float | None = None

    @property
    def inflight_batches(self) -> int:
        return len(self.inflight)

    @property
    def inflight_requests(self) -> int:
        return sum(entry.n_requests for entry in self.inflight.values())

    def describe(self, now: float | None = None) -> dict[str, Any]:
        """Per-shard stats row for ``/stats``: queue depth and ages."""
        now = time.monotonic() if now is None else now
        oldest = min(
            (entry.sent_at for entry in self.inflight.values()), default=None
        )
        return {
            "index": self.index,
            "generation": self.generation,
            "pid": self.process.pid,
            "alive": bool(self.process.is_alive()),
            "ready": self.ready,
            "queue_depth": self.inflight_batches,
            "inflight_requests": self.inflight_requests,
            "dispatched_batches": self.dispatched_batches,
            "completed_batches": self.completed_batches,
            "failed_batches": self.failed_batches,
            "oldest_inflight_age_s": (
                None if oldest is None else now - oldest
            ),
            "last_dispatch_age_s": (
                None
                if self.last_dispatch_at is None
                else now - self.last_dispatch_at
            ),
            "uptime_s": now - self.started_at,
            "substrates": sorted(self.substrates),
        }


class WorkerPool:
    """N spawned shard processes behind an asyncio ``execute`` call.

    One pipe and one reader thread per shard; futures are created on the
    dispatching event loop and resolved with ``call_soon_threadsafe``,
    so the pool survives the service being driven from different event
    loops over its lifetime (each ``infer_many`` call runs its own).
    """

    def __init__(self, spec: WorkerSpec, policy: ShardPolicy):
        if policy.workers < 1:
            raise ValueError(
                f"WorkerPool needs workers >= 1, got {policy.workers} "
                "(workers=0 means in-process serving; don't build a pool)"
            )
        self.spec = spec
        self.policy = policy
        import multiprocessing

        self._context = multiprocessing.get_context("spawn")
        self._handles: list[WorkerHandle] = []
        self._lock = threading.Lock()
        self._job_ids = itertools.count()
        self._generations = itertools.count()
        self._stopping = False
        self._started = False
        self._startup_failures = 0  # consecutive never-ready shard deaths
        self._failed_permanently = False
        self.respawns = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn every shard and wait until each reports warmed-up."""
        if self._started:
            return
        self._stopping = False
        self._handles = [
            self._spawn(index) for index in range(self.policy.workers)
        ]
        self._started = True
        # Guard against owners that exit without stop(): never leak
        # orphaned children.  (Shards also self-exit on parent-pipe EOF.)
        atexit.register(self.stop)
        await self._wait_ready()

    def _spawn(self, index: int) -> WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(self.spec, child_conn),
            name=f"repro-serve-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps one end; EOF now propagates
        handle = WorkerHandle(
            index, process, parent_conn, generation=next(self._generations)
        )
        threading.Thread(
            target=self._reader,
            args=(handle,),
            name=f"repro-serve-reader-{index}",
            daemon=True,
        ).start()
        return handle

    async def _wait_ready(self) -> None:
        deadline = time.monotonic() + self.policy.spawn_timeout_s
        while True:
            with self._lock:
                if self._failed_permanently:
                    raise WorkerCrashed(
                        -1,
                        0,
                        message=_STARTUP_FAILURE_MESSAGE,
                    )
                if all(h.ready for h in self._handles if h.alive) and any(
                    h.alive for h in self._handles
                ):
                    return
            if time.monotonic() >= deadline:
                raise WorkerCrashed(
                    -1,
                    0,
                    message=(
                        "no worker shard became ready within "
                        f"{self.policy.spawn_timeout_s:.0f}s"
                    ),
                )
            await asyncio.sleep(0.05)

    def stop(self) -> None:
        """Stop every shard within ``join_timeout_s``; escalate if needed.

        Idempotent and atexit-safe: stop -> deadline join -> terminate ->
        kill, then fail anything still in flight so no awaiter hangs.
        """
        if not self._started:
            return
        self._stopping = True
        self._started = False
        handles, self._handles = self._handles, []
        deadline = time.monotonic() + self.policy.join_timeout_s
        for handle in handles:
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for handle in handles:
            handle.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        for handle in handles:
            with self._lock:
                inflight = dict(handle.inflight)
                handle.inflight.clear()
            for entry in inflight.values():
                self._fail(
                    entry,
                    RequestExecutionError(
                        "service stopped before execution"
                    ),
                )
        atexit.unregister(self.stop)

    # -- dispatch ----------------------------------------------------------

    async def execute(
        self, key: PairKey, items: Sequence[RequestItem]
    ) -> list[Outcome]:
        """Route one assembled micro-batch to a shard; await its result.

        Raises:
            WorkerCrashed: the chosen shard died before answering (its
                replacement is already spawning), or no shard became
                ready within ``spawn_timeout_s``.
        """
        if not self._started:
            raise RuntimeError("worker pool is not started")
        handle = await self._pick(key[0])
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        job_id = next(self._job_ids)
        with self._lock:
            handle.inflight[job_id] = _Inflight(
                loop=loop,
                future=future,
                n_requests=len(items),
                sent_at=time.monotonic(),
            )
            handle.dispatched_batches += 1
            handle.last_dispatch_at = time.monotonic()
            handle.substrates.add(key[0])
        try:
            handle.conn.send(("batch", job_id, tuple(key), list(items)))
        except (OSError, ValueError, BrokenPipeError) as error:
            with self._lock:
                handle.inflight.pop(job_id, None)
            raise WorkerCrashed(handle.index, len(items)) from error
        return await future

    async def execute_track(
        self,
        index: int,
        generation: int,
        op: str,
        payload: Any,
        n_items: int = 1,
    ) -> list[Any]:
        """Run one track op on a *specific* shard generation (sticky
        routing: a track's filter state lives on exactly one shard).

        Returns the decoded outcome list (payload dicts / typed
        exceptions, one per item).  Raises :class:`WorkerCrashed` when
        that generation is gone -- dead, respawned, or never ready --
        so the caller (the track manager) can recover explicitly
        instead of silently hitting a fresh-state replacement.
        """
        if not self._started:
            raise RuntimeError("worker pool is not started")
        with self._lock:
            handle = (
                self._handles[index]
                if 0 <= index < len(self._handles)
                else None
            )
            if (
                handle is None
                or handle.generation != generation
                or not (handle.alive and handle.ready)
            ):
                raise WorkerCrashed(index, n_items)
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()
            job_id = next(self._job_ids)
            handle.inflight[job_id] = _Inflight(
                loop=loop,
                future=future,
                n_requests=n_items,
                sent_at=time.monotonic(),
            )
            handle.dispatched_batches += 1
            handle.last_dispatch_at = time.monotonic()
        try:
            handle.conn.send(("track", job_id, op, payload))
        except (OSError, ValueError, BrokenPipeError) as error:
            with self._lock:
                handle.inflight.pop(job_id, None)
            raise WorkerCrashed(handle.index, n_items) from error
        return await future

    def ready_homes(self) -> list[tuple[int, int]]:
        """Live placement targets as (shard index, generation) pairs."""
        with self._lock:
            return [
                (handle.index, handle.generation)
                for handle in self._handles
                if handle.alive and handle.ready
            ]

    def respawning_shards(self) -> list[int]:
        """Shard indices currently dead or warming a replacement (the
        /healthz ``degraded`` signal)."""
        with self._lock:
            return sorted(
                handle.index
                for handle in self._handles
                if not (handle.alive and handle.ready)
            )

    async def _pick(self, substrate: str) -> WorkerHandle:
        """Least-loaded live shard, affinity-tie-broken; waits for warm-up."""
        deadline = time.monotonic() + self.policy.spawn_timeout_s
        while True:
            with self._lock:
                ready = [
                    handle
                    for handle in self._handles
                    if handle.alive and handle.ready
                ]
                if ready:
                    if self.policy.affinity:
                        return min(
                            ready,
                            key=lambda h: (
                                h.inflight_requests,
                                substrate not in h.substrates,
                                h.index,
                            ),
                        )
                    return min(
                        ready,
                        key=lambda h: (h.inflight_requests, h.index),
                    )
            with self._lock:
                if self._failed_permanently:
                    raise WorkerCrashed(
                        -1, 0, message=_STARTUP_FAILURE_MESSAGE
                    )
            if time.monotonic() >= deadline:
                raise WorkerCrashed(
                    -1,
                    0,
                    message=(
                        "no live worker shard became ready within "
                        f"{self.policy.spawn_timeout_s:.0f}s; retry"
                    ),
                )
            await asyncio.sleep(0.05)

    # -- reader thread -----------------------------------------------------

    def _reader(self, handle: WorkerHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "ready":
                handle.ready = True
            elif kind == "result":
                self._resolve(handle, message[1], message[2])
        self._on_worker_death(handle)

    def _resolve(
        self, handle: WorkerHandle, job_id: int, encoded: list
    ) -> None:
        with self._lock:
            entry = handle.inflight.pop(job_id, None)
            handle.completed_batches += 1
        if entry is None:
            return
        outcomes: list[Outcome] = [
            payload
            if tag == "ok"
            else TrackError(payload[0], str(payload[1]))
            if tag == "track_error"
            else RequestExecutionError(str(payload))
            for tag, payload in encoded
        ]

        def apply() -> None:
            if not entry.future.done():
                entry.future.set_result(outcomes)

        self._call_threadsafe(entry.loop, apply)

    def _on_worker_death(self, handle: WorkerHandle) -> None:
        """Pipe EOF: fail in-flight work with a 503 and respawn the shard."""
        was_ready = handle.ready
        handle.alive = False
        handle.ready = False
        with self._lock:
            inflight = dict(handle.inflight)
            handle.inflight.clear()
            handle.failed_batches += len(inflight)
            if was_ready:
                self._startup_failures = 0
            else:
                # A shard that died before finishing warm-up will very
                # likely die again (bad spec, spawn-incompatible
                # __main__): cap the respawn loop instead of thrashing.
                self._startup_failures += 1
                if self._startup_failures > 3 * self.policy.workers:
                    self._failed_permanently = True
        for entry in inflight.values():
            self._fail(
                entry, WorkerCrashed(handle.index, entry.n_requests)
            )
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=1.0)  # reap; the process is gone
        if (
            self._stopping
            or not self.policy.respawn
            or self._failed_permanently
        ):
            return
        replacement: WorkerHandle | None = self._spawn(handle.index)
        with self._lock:
            self.respawns += 1
            if (
                replacement is not None
                and self._started
                and handle.index < len(self._handles)
                and self._handles[handle.index] is handle
            ):
                self._handles[handle.index] = replacement
                replacement = None  # installed
        if replacement is not None:
            # The pool stopped while we were respawning: don't leak it.
            replacement.process.terminate()
            replacement.process.join(timeout=1.0)

    def _fail(self, entry: _Inflight, error: Exception) -> None:
        def apply() -> None:
            if not entry.future.done():
                entry.future.set_exception(error)

        self._call_threadsafe(entry.loop, apply)

    @staticmethod
    def _call_threadsafe(loop: asyncio.AbstractEventLoop, fn: Any) -> None:
        try:
            loop.call_soon_threadsafe(fn)
        except RuntimeError:
            pass  # the dispatching loop is gone; nothing left to notify

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Pool-level stats: one row per shard (queue depth, ages, pids)."""
        now = time.monotonic()
        with self._lock:
            shards = [handle.describe(now) for handle in self._handles]
        return {
            "workers": self.policy.workers,
            "respawns": self.respawns,
            "shards": shards,
        }


__all__ = ["WorkerHandle", "WorkerPool", "WorkerSpec", "_worker_main"]
