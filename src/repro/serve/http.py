"""Stdlib-only HTTP front end for :class:`~repro.serve.InferenceService`.

No third-party web framework: a ``ThreadingHTTPServer`` whose handler
threads bridge into the service's asyncio loop with
``asyncio.run_coroutine_threadsafe``.  Endpoints:

- ``POST /infer``  -- body: an :class:`~repro.serve.InferenceRequest`
  JSON object (``inputs`` as nested lists or a tagged ndarray).  Returns
  the :class:`~repro.serve.InferenceResponse` (200), a client error for
  malformed requests / unknown substrates / width mismatches (400), or
  a retryable 503 when the bounded queue is full **or** a worker shard
  died mid-flight (:class:`~repro.serve.types.WorkerCrashed` is a
  :class:`~repro.serve.ServiceOverloaded` -- the shard respawns, the
  client retries; a dead shard never hangs a request).
- ``GET /healthz`` -- static service configuration, 200 when serving.
- ``GET /stats``   -- live counters (requests, batches, rejections,
  per-substrate tallies, pool idle states, and -- when sharded -- one
  row per worker shard with queue depth and dispatch ages).

Every body is emitted with :func:`repro.api.results.strict_dumps`, so
the wire never carries bare ``NaN`` / ``Infinity`` tokens: non-finite
floats arrive as tagged ``{"__nonfinite__": ...}`` sentinels that
:func:`repro.api.results.strict_loads` restores exactly.
"""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.results import strict_dumps
from repro.serve.service import InferenceService
from repro.serve.types import (
    InferenceRequest,
    RequestExecutionError,
    ServiceOverloaded,
    WorkerCrashed,
)

REQUEST_TIMEOUT_S = 300.0
MAX_BODY_BYTES = 32 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    server: "ServiceHTTPServer"

    # Quiet by default; the CLI enables logging via server attribute.
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: Any) -> None:
        body = strict_dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            self._reply(200, {"status": "ok", **service.describe()})
        elif self.path == "/stats":
            self._reply(200, service.stats_snapshot())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        if self.path != "/infer":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._reply(400, {"error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._reply(400, {"error": "missing or oversized request body"})
            return
        body = self.rfile.read(length)
        try:
            request = InferenceRequest.from_json(body.decode("utf-8"))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
            self._reply(400, {"error": f"bad request: {error}"})
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.service.submit(request), self.server.loop
        )
        try:
            response = future.result(timeout=REQUEST_TIMEOUT_S)
        except ServiceOverloaded as error:
            if isinstance(error, WorkerCrashed):
                # Shard death, not an admission bound: report which
                # shard died instead of a meaningless queue limit.
                payload = {
                    "error": str(error),
                    "shard": error.shard,
                    "pending": error.pending,
                }
            else:
                payload = {
                    "error": str(error),
                    "pending": error.pending,
                    "max_pending": error.max_pending,
                }
            self._reply(503, payload)
        except RequestExecutionError as error:
            # Engine/session failure while executing the micro-batch: a
            # server-side fault, never the client's request.
            self._reply(500, {"error": str(error)})
        except (KeyError, ValueError) as error:
            # Submission-time validation: unknown substrate/model, input
            # width mismatch -- the request itself is at fault.
            message = error.args[0] if error.args else str(error)
            self._reply(400, {"error": str(message)})
        except Exception as error:
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply(200, response.to_dict())


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to a service and its event loop."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: InferenceService,
        loop: asyncio.AbstractEventLoop,
        verbose: bool = False,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.loop = loop
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


class ServingContext:
    """A running service + HTTP server pair with owned background threads.

    The service's asyncio loop runs on one daemon thread and the HTTP
    server on another, so tests (and the CLI, which then just blocks)
    can stand up a full serving stack in-process::

        with serve_http(service, port=0) as ctx:
            urllib.request.urlopen(f"http://127.0.0.1:{ctx.port}/healthz")
    """

    def __init__(self, service: InferenceService, host: str, port: int,
                 verbose: bool = False):
        self.service = service
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            service.start(), self.loop
        ).result()
        self.server = ServiceHTTPServer(
            (host, port), service, self.loop, verbose=verbose
        )
        self._http_thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()

    @property
    def port(self) -> int:
        return self.server.port

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._http_thread.join(timeout=10)
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._loop_thread.join(timeout=10)
        self.loop.close()

    def __enter__(self) -> "ServingContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve_http(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 8000,
    verbose: bool = False,
) -> ServingContext:
    """Start ``service`` behind an HTTP endpoint; returns the context.

    ``port=0`` binds an ephemeral port (see ``context.port``).
    """
    return ServingContext(service, host, port, verbose=verbose)


__all__ = ["ServiceHTTPServer", "ServingContext", "serve_http"]
