"""Stdlib-only HTTP front end for :class:`~repro.serve.InferenceService`.

No third-party web framework: a ``ThreadingHTTPServer`` whose handler
threads bridge into the service's asyncio loop with
``asyncio.run_coroutine_threadsafe``.  Endpoints:

- ``POST /infer``  -- body: an :class:`~repro.serve.InferenceRequest`
  JSON object (``inputs`` as nested lists or a tagged ndarray).  Returns
  the :class:`~repro.serve.InferenceResponse` (200), a client error for
  malformed requests / unknown substrates / width mismatches (400), or
  a retryable 503 when the bounded queue is full **or** a worker shard
  died mid-flight (:class:`~repro.serve.types.WorkerCrashed` is a
  :class:`~repro.serve.ServiceOverloaded` -- the shard respawns, the
  client retries; a dead shard never hangs a request).
- ``POST /track/open`` / ``/track/step`` / ``/track/close`` -- stateful
  streaming tracks (:mod:`repro.serve.tracks`): open a live
  particle-filter localization stream (503 + ``Retry-After`` beyond the
  :class:`~repro.runtime.policy.TrackPolicy` admission bound), feed it
  one measurement per step, close it.  Track lifecycle errors are
  typed: 404 for unknown tracks (and services without a track world),
  410 for expired (idle-TTL-evicted) or closed tracks -- never a hang.
- ``GET /healthz`` -- static service configuration plus liveness:
  ``status`` is ``"degraded"`` (with the respawning shard ids) while a
  dead worker shard is being respawned, so load balancers can drain
  early; ``"ok"`` otherwise.
- ``GET /stats``   -- live counters (requests, batches, rejections,
  per-substrate tallies, pool idle states, track lifecycle tallies,
  and -- when sharded -- one row per worker shard with queue depth and
  dispatch ages).

Every 503 -- admission bound, shard crash, track admission -- carries a
``Retry-After`` header and machine-readable ``"retryable": true`` in
the JSON body, so clients back off on structure instead of
string-matching error messages.

Every body is emitted with :func:`repro.api.results.strict_dumps`, so
the wire never carries bare ``NaN`` / ``Infinity`` tokens: non-finite
floats arrive as tagged ``{"__nonfinite__": ...}`` sentinels that
:func:`repro.api.results.strict_loads` restores exactly.
"""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.results import strict_dumps, strict_loads
from repro.serve.service import InferenceService
from repro.serve.types import (
    InferenceRequest,
    RequestExecutionError,
    ServiceOverloaded,
    TrackError,
    TrackOpenRequest,
    TrackStepRequest,
    WorkerCrashed,
)

REQUEST_TIMEOUT_S = 300.0
MAX_BODY_BYTES = 32 * 1024 * 1024
RETRY_AFTER_S = 1

# TrackError.kind -> HTTP status: unknown tracks (and track serving
# being disabled) are 404s; expired/closed tracks are 410 Gone -- the id
# was valid once but will never serve again.
_TRACK_STATUS = {
    "unknown": 404,
    "disabled": 404,
    "expired": 410,
    "closed": 410,
}


class _Handler(BaseHTTPRequestHandler):
    server: "ServiceHTTPServer"

    # Quiet by default; the CLI enables logging via server attribute.
    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = strict_dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_overloaded(self, error: ServiceOverloaded) -> None:
        """All 503s are structurally retryable: ``Retry-After`` header
        plus ``retryable: true`` in the body, so clients back off
        without string-matching."""
        if isinstance(error, WorkerCrashed):
            # Shard death, not an admission bound: report which shard
            # died instead of a meaningless queue limit.
            payload = {
                "error": str(error),
                "retryable": True,
                "shard": error.shard,
                "pending": error.pending,
            }
        else:
            payload = {
                "error": str(error),
                "retryable": True,
                "pending": error.pending,
                "max_pending": error.max_pending,
            }
        self._reply(503, payload, headers={"Retry-After": str(RETRY_AFTER_S)})

    def do_GET(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            self._reply(200, {**service.health(), **service.describe()})
        elif self.path == "/stats":
            self._reply(200, service.stats_snapshot())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def _read_body(self) -> str | None:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._reply(400, {"error": "bad Content-Length"})
            return None
        if length <= 0 or length > MAX_BODY_BYTES:
            self._reply(400, {"error": "missing or oversized request body"})
            return None
        try:
            return self.rfile.read(length).decode("utf-8")
        except UnicodeDecodeError as error:
            self._reply(400, {"error": f"bad request: {error}"})
            return None

    def do_POST(self) -> None:
        routes = {
            "/infer": self._post_infer,
            "/track/open": self._post_track_open,
            "/track/step": self._post_track_step,
            "/track/close": self._post_track_close,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        body = self._read_body()
        if body is None:
            return
        handler(body)

    def _run(self, coroutine: Any) -> Any:
        """Bridge a service coroutine into the handler thread."""
        future = asyncio.run_coroutine_threadsafe(
            coroutine, self.server.loop
        )
        return future.result(timeout=REQUEST_TIMEOUT_S)

    def _post_infer(self, body: str) -> None:
        try:
            request = InferenceRequest.from_json(body)
        except (ValueError, KeyError, TypeError) as error:
            self._reply(400, {"error": f"bad request: {error}"})
            return
        try:
            response = self._run(self.server.service.submit(request))
        except ServiceOverloaded as error:
            self._reply_overloaded(error)
        except RequestExecutionError as error:
            # Engine/session failure while executing the micro-batch: a
            # server-side fault, never the client's request.
            self._reply(500, {"error": str(error)})
        except (KeyError, ValueError) as error:
            # Submission-time validation: unknown substrate/model, input
            # width mismatch -- the request itself is at fault.
            message = error.args[0] if error.args else str(error)
            self._reply(400, {"error": str(message)})
        except Exception as error:
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply(200, response.to_dict())

    def _reply_track_error(self, error: TrackError) -> None:
        self._reply(
            _TRACK_STATUS.get(error.kind, 400),
            {"error": str(error), "kind": error.kind, "retryable": False},
        )

    def _post_track_open(self, body: str) -> None:
        service = self.server.service
        try:
            request = TrackOpenRequest.from_json(body)
        except (ValueError, KeyError, TypeError) as error:
            self._reply(400, {"error": f"bad request: {error}"})
            return
        try:
            result = self._run(service.track_open(request))
        except ServiceOverloaded as error:
            self._reply_overloaded(error)
        except TrackError as error:
            self._reply_track_error(error)
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            self._reply(400, {"error": str(message)})
        except Exception as error:
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply(200, result)

    def _post_track_step(self, body: str) -> None:
        service = self.server.service
        try:
            request = TrackStepRequest.from_json(body)
        except (ValueError, KeyError, TypeError) as error:
            self._reply(400, {"error": f"bad request: {error}"})
            return
        try:
            response = self._run(service.track_step(request))
        except ServiceOverloaded as error:
            self._reply_overloaded(error)
        except TrackError as error:
            self._reply_track_error(error)
        except RequestExecutionError as error:
            self._reply(500, {"error": str(error)})
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            self._reply(400, {"error": str(message)})
        except Exception as error:
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply(200, response.to_dict())

    def _post_track_close(self, body: str) -> None:
        service = self.server.service
        try:
            payload = strict_loads(body)
            track_id = str(payload["track_id"])
        except (ValueError, KeyError, TypeError) as error:
            self._reply(400, {"error": f"bad request: {error}"})
            return
        try:
            result = self._run(service.track_close(track_id))
        except ServiceOverloaded as error:
            self._reply_overloaded(error)
        except TrackError as error:
            self._reply_track_error(error)
        except Exception as error:
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply(200, result)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to a service and its event loop."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: InferenceService,
        loop: asyncio.AbstractEventLoop,
        verbose: bool = False,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.loop = loop
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


class ServingContext:
    """A running service + HTTP server pair with owned background threads.

    The service's asyncio loop runs on one daemon thread and the HTTP
    server on another, so tests (and the CLI, which then just blocks)
    can stand up a full serving stack in-process::

        with serve_http(service, port=0) as ctx:
            urllib.request.urlopen(f"http://127.0.0.1:{ctx.port}/healthz")
    """

    def __init__(self, service: InferenceService, host: str, port: int,
                 verbose: bool = False):
        self.service = service
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            service.start(), self.loop
        ).result()
        self.server = ServiceHTTPServer(
            (host, port), service, self.loop, verbose=verbose
        )
        self._http_thread = threading.Thread(
            target=self.server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()

    @property
    def port(self) -> int:
        return self.server.port

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._http_thread.join(timeout=10)
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._loop_thread.join(timeout=10)
        self.loop.close()

    def __enter__(self) -> "ServingContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve_http(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 8000,
    verbose: bool = False,
) -> ServingContext:
    """Start ``service`` behind an HTTP endpoint; returns the context.

    ``port=0`` binds an ephemeral port (see ``context.port``).
    """
    return ServingContext(service, host, port, verbose=verbose)


__all__ = ["ServiceHTTPServer", "ServingContext", "serve_http"]
