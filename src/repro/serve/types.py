"""Typed request/response schema of the inference service.

A request is *stateless*: everything needed to reproduce its result --
the input batch, the substrate and model names, and the seed -- travels
in the request itself.  The determinism contract (asserted by tests and
the CI smoke step) is that the response's result is bit-for-bit what a
direct pinned-mask run on an identically constructed session produces::

    base = np.random.default_rng(request.seed)
    plan = session.draw_masks(base)
    reference = session.run(request.inputs, rng=base, masks=plan)

independent of which other requests happened to share the micro-batch.

Both dataclasses round-trip through the :mod:`repro.api.results`
``to_jsonable`` machinery; over the HTTP wire they use the *strict*
encoding (:func:`repro.api.results.strict_dumps`), which replaces
non-finite floats with tagged sentinels so the emitted JSON is valid for
any client.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.api.results import (
    InferenceResult,
    from_jsonable,
    strict_dumps,
    strict_loads,
    to_jsonable,
)

DEFAULT_MODEL = "default"


class RequestExecutionError(RuntimeError):
    """A request failed *while executing* on its session.

    Submission-time problems (unknown substrate, width mismatch,
    overload) raise their own types from ``submit`` before batching;
    this wrapper marks failures from inside the micro-batch execution so
    transports can distinguish server-side faults (HTTP 500) from client
    errors (400).  The original exception is chained as ``__cause__``.
    """


class ServiceOverloaded(RuntimeError):
    """The service's bounded request queue is full.

    Raised (HTTP 503) instead of queueing without bound: the caller sees
    the overload immediately and can back off or shed load.

    Attributes:
        pending: admitted-but-unfinished requests at rejection time.
        max_pending: the queue policy's admission bound.
    """

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            f"service overloaded: {pending} pending request(s) at the "
            f"admission bound of {max_pending}; retry later"
        )
        self.pending = pending
        self.max_pending = max_pending


class WorkerCrashed(ServiceOverloaded):
    """A worker shard died while (or before) serving a micro-batch.

    Subclasses :class:`ServiceOverloaded` deliberately: shard death is a
    transient capacity loss -- the pool respawns the shard -- so
    transports answer it with the same retryable 503, never a hung
    future.  ``shard`` is the dead shard's index (-1 when no shard was
    available at all) and ``pending`` counts the requests that were in
    flight on it.  ``max_pending`` is 0: shard death is not an admission
    rejection, so there is no meaningful queue bound to report (HTTP
    crash replies carry ``shard``/``pending`` instead).
    """

    def __init__(self, shard: int, pending: int, message: str | None = None):
        RuntimeError.__init__(
            self,
            message
            or (
                f"worker shard {shard} died with {pending} in-flight "
                "request(s); the shard is respawning -- retry"
            ),
        )
        self.shard = shard
        self.pending = pending
        self.max_pending = 0


@dataclass(frozen=True)
class InferenceRequest:
    """One stateless MC-Dropout inference request.

    Attributes:
        inputs: (B, in) feature batch (1-D inputs are promoted).
        substrate: registered substrate name to run on.
        model: served model name (services may host several).
        seed: determinism seed -- fixes the dropout mask plan and the
            analog noise stream (see the module docstring contract).
        request_id: optional caller-side correlation id, echoed back.
    """

    inputs: np.ndarray
    substrate: str = "cim"
    model: str = DEFAULT_MODEL
    seed: int = 0
    request_id: str | None = None

    def __post_init__(self) -> None:
        array = np.atleast_2d(np.asarray(self.inputs, dtype=float))
        object.__setattr__(self, "inputs", array)
        object.__setattr__(self, "seed", int(self.seed))

    def to_dict(self) -> dict:
        return to_jsonable(dataclasses.asdict(self))

    def to_json(self, indent: int | None = None) -> str:
        return strict_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "InferenceRequest":
        data = from_jsonable(dict(payload))
        if "inputs" not in data:
            raise ValueError("request payload is missing 'inputs'")
        unknown = set(data) - {
            "inputs", "substrate", "model", "seed", "request_id",
        }
        if unknown:
            raise ValueError(
                f"unknown request field(s) {sorted(unknown)}; expected "
                "inputs/substrate/model/seed/request_id"
            )
        return cls(
            inputs=np.asarray(data["inputs"], dtype=float),
            substrate=str(data.get("substrate", "cim")),
            model=str(data.get("model", DEFAULT_MODEL)),
            seed=int(data.get("seed", 0)),
            request_id=(
                None
                if data.get("request_id") is None
                else str(data["request_id"])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "InferenceRequest":
        return cls.from_dict(strict_loads(text))


@dataclass
class InferenceResponse:
    """The service's answer to one :class:`InferenceRequest`.

    Attributes:
        result: the per-request :class:`InferenceResult` -- mean /
            variance / ops / energy are scoped to this request alone
            (concurrent requests never bleed metering into each other).
        substrate: substrate the request ran on (resolved name).
        model: model name the request ran against.
        seed: the request's determinism seed.
        request_id: echoed correlation id.
        batch_size: size of the micro-batch this request was coalesced
            into (1 = served alone).
        group_size: requests in the batch that shared this request's
            seed, and therefore one mask-plan draw.
        queue_s: time from admission to execution start.
        total_s: time from admission to completion.
    """

    result: InferenceResult
    substrate: str
    model: str
    seed: int
    request_id: str | None = None
    batch_size: int = 1
    group_size: int = 1
    queue_s: float = 0.0
    total_s: float = 0.0
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "substrate": self.substrate,
            "model": self.model,
            "seed": self.seed,
            "request_id": self.request_id,
            "batch_size": self.batch_size,
            "group_size": self.group_size,
            "queue_s": self.queue_s,
            "total_s": self.total_s,
            "extras": to_jsonable(self.extras),
        }

    def to_json(self, indent: int | None = None) -> str:
        return strict_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "InferenceResponse":
        return cls(
            result=InferenceResult.from_dict(payload["result"]),
            substrate=payload["substrate"],
            model=payload.get("model", DEFAULT_MODEL),
            seed=int(payload.get("seed", 0)),
            request_id=payload.get("request_id"),
            batch_size=int(payload.get("batch_size", 1)),
            group_size=int(payload.get("group_size", 1)),
            queue_s=float(payload.get("queue_s", 0.0)),
            total_s=float(payload.get("total_s", 0.0)),
            extras=from_jsonable(payload.get("extras", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "InferenceResponse":
        return cls.from_dict(strict_loads(text))


__all__ = [
    "DEFAULT_MODEL",
    "InferenceRequest",
    "InferenceResponse",
    "RequestExecutionError",
    "ServiceOverloaded",
    "WorkerCrashed",
]
