"""Typed request/response schema of the inference service.

A request is *stateless*: everything needed to reproduce its result --
the input batch, the substrate and model names, and the seed -- travels
in the request itself.  The determinism contract (asserted by tests and
the CI smoke step) is that the response's result is bit-for-bit what a
direct pinned-mask run on an identically constructed session produces::

    base = np.random.default_rng(request.seed)
    plan = session.draw_masks(base)
    reference = session.run(request.inputs, rng=base, masks=plan)

independent of which other requests happened to share the micro-batch.

Both dataclasses round-trip through the :mod:`repro.api.results`
``to_jsonable`` machinery; over the HTTP wire they use the *strict*
encoding (:func:`repro.api.results.strict_dumps`), which replaces
non-finite floats with tagged sentinels so the emitted JSON is valid for
any client.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.results import (
    InferenceResult,
    from_jsonable,
    strict_dumps,
    strict_loads,
    to_jsonable,
)

DEFAULT_MODEL = "default"


class RequestExecutionError(RuntimeError):
    """A request failed *while executing* on its session.

    Submission-time problems (unknown substrate, width mismatch,
    overload) raise their own types from ``submit`` before batching;
    this wrapper marks failures from inside the micro-batch execution so
    transports can distinguish server-side faults (HTTP 500) from client
    errors (400).  The original exception is chained as ``__cause__``.
    """


class ServiceOverloaded(RuntimeError):
    """The service's bounded request queue is full.

    Raised (HTTP 503) instead of queueing without bound: the caller sees
    the overload immediately and can back off or shed load.

    Attributes:
        pending: admitted-but-unfinished requests at rejection time.
        max_pending: the queue policy's admission bound.
    """

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            f"service overloaded: {pending} pending request(s) at the "
            f"admission bound of {max_pending}; retry later"
        )
        self.pending = pending
        self.max_pending = max_pending


class WorkerCrashed(ServiceOverloaded):
    """A worker shard died while (or before) serving a micro-batch.

    Subclasses :class:`ServiceOverloaded` deliberately: shard death is a
    transient capacity loss -- the pool respawns the shard -- so
    transports answer it with the same retryable 503, never a hung
    future.  ``shard`` is the dead shard's index (-1 when no shard was
    available at all) and ``pending`` counts the requests that were in
    flight on it.  ``max_pending`` is 0: shard death is not an admission
    rejection, so there is no meaningful queue bound to report (HTTP
    crash replies carry ``shard``/``pending`` instead).
    """

    def __init__(self, shard: int, pending: int, message: str | None = None):
        RuntimeError.__init__(
            self,
            message
            or (
                f"worker shard {shard} died with {pending} in-flight "
                "request(s); the shard is respawning -- retry"
            ),
        )
        self.shard = shard
        self.pending = pending
        self.max_pending = 0


class TrackError(RuntimeError):
    """A track operation referenced a track that cannot serve it.

    ``kind`` is machine-readable: ``"unknown"`` (never opened, or
    tombstone aged out), ``"expired"`` (evicted by the idle-TTL sweep),
    ``"closed"`` (explicitly closed by the client), or ``"disabled"``
    (the service was built without a track world).  Transports map kinds
    onto statuses (404 unknown/disabled, 410 expired/closed); none of
    them is retryable.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


@dataclass(frozen=True)
class InferenceRequest:
    """One stateless MC-Dropout inference request.

    Attributes:
        inputs: (B, in) feature batch (1-D inputs are promoted).
        substrate: registered substrate name to run on.
        model: served model name (services may host several).
        seed: determinism seed -- fixes the dropout mask plan and the
            analog noise stream (see the module docstring contract).
        request_id: optional caller-side correlation id, echoed back.
    """

    inputs: np.ndarray
    substrate: str = "cim"
    model: str = DEFAULT_MODEL
    seed: int = 0
    request_id: str | None = None

    def __post_init__(self) -> None:
        array = np.atleast_2d(np.asarray(self.inputs, dtype=float))
        object.__setattr__(self, "inputs", array)
        object.__setattr__(self, "seed", int(self.seed))

    def wire_item(self) -> tuple:
        """The plain picklable tuple this request contributes to a
        micro-batch (see :data:`repro.serve.execution.RequestItem`)."""
        return (self.inputs, self.seed, self.request_id)

    def to_dict(self) -> dict:
        return to_jsonable(dataclasses.asdict(self))

    def to_json(self, indent: int | None = None) -> str:
        return strict_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "InferenceRequest":
        data = from_jsonable(dict(payload))
        if "inputs" not in data:
            raise ValueError("request payload is missing 'inputs'")
        unknown = set(data) - {
            "inputs", "substrate", "model", "seed", "request_id",
        }
        if unknown:
            raise ValueError(
                f"unknown request field(s) {sorted(unknown)}; expected "
                "inputs/substrate/model/seed/request_id"
            )
        return cls(
            inputs=np.asarray(data["inputs"], dtype=float),
            substrate=str(data.get("substrate", "cim")),
            model=str(data.get("model", DEFAULT_MODEL)),
            seed=int(data.get("seed", 0)),
            request_id=(
                None
                if data.get("request_id") is None
                else str(data["request_id"])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "InferenceRequest":
        return cls.from_dict(strict_loads(text))


@dataclass
class InferenceResponse:
    """The service's answer to one :class:`InferenceRequest`.

    Attributes:
        result: the per-request :class:`InferenceResult` -- mean /
            variance / ops / energy are scoped to this request alone
            (concurrent requests never bleed metering into each other).
        substrate: substrate the request ran on (resolved name).
        model: model name the request ran against.
        seed: the request's determinism seed.
        request_id: echoed correlation id.
        batch_size: size of the micro-batch this request was coalesced
            into (1 = served alone).
        group_size: requests in the batch that shared this request's
            seed, and therefore one mask-plan draw.
        queue_s: time from admission to execution start.
        total_s: time from admission to completion.
    """

    result: InferenceResult
    substrate: str
    model: str
    seed: int
    request_id: str | None = None
    batch_size: int = 1
    group_size: int = 1
    queue_s: float = 0.0
    total_s: float = 0.0
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "substrate": self.substrate,
            "model": self.model,
            "seed": self.seed,
            "request_id": self.request_id,
            "batch_size": self.batch_size,
            "group_size": self.group_size,
            "queue_s": self.queue_s,
            "total_s": self.total_s,
            "extras": to_jsonable(self.extras),
        }

    def to_json(self, indent: int | None = None) -> str:
        return strict_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "InferenceResponse":
        return cls(
            result=InferenceResult.from_dict(payload["result"]),
            substrate=payload["substrate"],
            model=payload.get("model", DEFAULT_MODEL),
            seed=int(payload.get("seed", 0)),
            request_id=payload.get("request_id"),
            batch_size=int(payload.get("batch_size", 1)),
            group_size=int(payload.get("group_size", 1)),
            queue_s=float(payload.get("queue_s", 0.0)),
            total_s=float(payload.get("total_s", 0.0)),
            extras=from_jsonable(payload.get("extras", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "InferenceResponse":
        return cls.from_dict(strict_loads(text))


@dataclass(frozen=True)
class TrackInit:
    """How a track's particle filter is initialized on open (and again
    on crash recovery, whether replaying or re-initializing).

    ``mode="tracking"`` needs a prior ``state`` (4,) and ``sigma`` (4,);
    ``mode="global"`` spreads particles over the map (``z_range``
    optional).  The init crosses the wire and the shard pipe, so it only
    holds plain arrays.
    """

    mode: str = "tracking"
    state: np.ndarray | None = None
    sigma: np.ndarray | None = None
    z_range: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("tracking", "global"):
            raise ValueError(
                f"init mode must be 'tracking' or 'global', got {self.mode!r}"
            )
        if self.mode == "tracking":
            if self.state is None or self.sigma is None:
                raise ValueError(
                    "init mode 'tracking' needs 'state' and 'sigma'"
                )
            object.__setattr__(
                self, "state", np.asarray(self.state, dtype=float).reshape(-1)
            )
            object.__setattr__(
                self, "sigma", np.asarray(self.sigma, dtype=float).reshape(-1)
            )
        if self.z_range is not None:
            low, high = self.z_range
            object.__setattr__(self, "z_range", (float(low), float(high)))

    def apply(self, session: Any, rng: np.random.Generator) -> None:
        """Initialize ``session`` (a LocalizationSession) with ``rng``."""
        if self.mode == "tracking":
            session.initialize_tracking(self.state, self.sigma, rng)
        else:
            session.initialize_global(rng, z_range=self.z_range)

    def to_dict(self) -> dict:
        return to_jsonable(
            {
                "mode": self.mode,
                "state": self.state,
                "sigma": self.sigma,
                "z_range": (
                    None if self.z_range is None else list(self.z_range)
                ),
            }
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "TrackInit":
        data = from_jsonable(dict(payload))
        unknown = set(data) - {"mode", "state", "sigma", "z_range"}
        if unknown:
            raise ValueError(
                f"unknown init field(s) {sorted(unknown)}; expected "
                "mode/state/sigma/z_range"
            )
        z_range = data.get("z_range")
        return cls(
            mode=str(data.get("mode", "tracking")),
            state=data.get("state"),
            sigma=data.get("sigma"),
            z_range=None if z_range is None else tuple(z_range),
        )


@dataclass(frozen=True)
class TrackOpenRequest:
    """``POST /track/open``: start one live localization stream.

    Attributes:
        substrate: registered substrate name the track runs on.
        init: filter initialization (see :class:`TrackInit`).
        seed: the track's determinism seed -- one generator seeded with
            it drives the init and every subsequent step, exactly as a
            one-shot ``LocalizationSession.run()`` with the same
            generator would (the stream determinism contract).
        track_id: optional caller-chosen id; autogenerated when omitted.
    """

    init: TrackInit
    substrate: str = "cim"
    seed: int = 0
    track_id: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))

    def to_dict(self) -> dict:
        return {
            "substrate": self.substrate,
            "init": self.init.to_dict(),
            "seed": self.seed,
            "track_id": self.track_id,
        }

    def to_json(self, indent: int | None = None) -> str:
        return strict_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "TrackOpenRequest":
        data = dict(payload)
        unknown = set(data) - {"substrate", "init", "seed", "track_id"}
        if unknown:
            raise ValueError(
                f"unknown track-open field(s) {sorted(unknown)}; expected "
                "substrate/init/seed/track_id"
            )
        if "init" not in data:
            raise ValueError("track-open payload is missing 'init'")
        return cls(
            init=TrackInit.from_dict(data["init"]),
            substrate=str(data.get("substrate", "cim")),
            seed=int(data.get("seed", 0)),
            track_id=(
                None if data.get("track_id") is None else str(data["track_id"])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "TrackOpenRequest":
        return cls.from_dict(strict_loads(text))


@dataclass(frozen=True)
class TrackStepRequest:
    """``POST /track/step``: one measurement for one live track.

    Attributes:
        track_id: the open track this measurement belongs to.
        control: (4,) body-frame odometry increment.
        depth: the depth frame for this step.
        truth: optional (4,) ground-truth state; when given, the
            response reports the position error for this step.
    """

    track_id: str
    control: np.ndarray
    depth: np.ndarray
    truth: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "control", np.asarray(self.control, dtype=float).reshape(-1)
        )
        object.__setattr__(
            self, "depth", np.asarray(self.depth, dtype=float)
        )
        if self.truth is not None:
            object.__setattr__(
                self, "truth", np.asarray(self.truth, dtype=float).reshape(-1)
            )

    def wire_item(self) -> tuple:
        """The picklable per-step tuple batched across tracks:
        ``(track_id, control, depth, truth)``."""
        return (self.track_id, self.control, self.depth, self.truth)

    def to_dict(self) -> dict:
        return to_jsonable(
            {
                "track_id": self.track_id,
                "control": self.control,
                "depth": self.depth,
                "truth": self.truth,
            }
        )

    def to_json(self, indent: int | None = None) -> str:
        return strict_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "TrackStepRequest":
        data = from_jsonable(dict(payload))
        unknown = set(data) - {"track_id", "control", "depth", "truth"}
        if unknown:
            raise ValueError(
                f"unknown track-step field(s) {sorted(unknown)}; expected "
                "track_id/control/depth/truth"
            )
        for required in ("track_id", "control", "depth"):
            if data.get(required) is None:
                raise ValueError(
                    f"track-step payload is missing {required!r}"
                )
        return cls(
            track_id=str(data["track_id"]),
            control=data["control"],
            depth=data["depth"],
            truth=data.get("truth"),
        )

    @classmethod
    def from_json(cls, text: str) -> "TrackStepRequest":
        return cls.from_dict(strict_loads(text))


@dataclass
class TrackStepResponse:
    """The service's answer to one :class:`TrackStepRequest`.

    ``estimate`` and the *cumulative* metering fields (``energy_j`` /
    ``ops_executed`` / ``energy_breakdown_j``, scoped from track open)
    are the stream determinism contract: after N acked steps they are
    bit-for-bit what a one-shot ``LocalizationSession.run()`` over the
    same N measurements reports on an identically built session.
    ``step_energy_j`` / ``step_ops`` meter this step alone.

    ``state_lost`` is True on the first response after a crash recovery
    that could not replay (the filter restarted from the track's init;
    metering restarted with it).  ``replayed_steps`` counts the buffered
    measurements re-executed by a successful replay recovery.
    """

    track_id: str
    step_index: int
    estimate: np.ndarray
    ess: float
    resampled: bool
    log_evidence: float
    spread: float
    energy_j: float
    ops_executed: int
    energy_breakdown_j: dict[str, float]
    step_energy_j: float
    step_ops: int
    substrate: str
    error_m: float | None = None
    state_lost: bool = False
    replayed_steps: int = 0
    batch_size: int = 1
    queue_s: float = 0.0
    total_s: float = 0.0

    def to_dict(self) -> dict:
        return to_jsonable(dataclasses.asdict(self))

    def to_json(self, indent: int | None = None) -> str:
        return strict_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "TrackStepResponse":
        data = from_jsonable(dict(payload))
        return cls(
            track_id=str(data["track_id"]),
            step_index=int(data["step_index"]),
            estimate=np.asarray(data["estimate"], dtype=float),
            ess=float(data["ess"]),
            resampled=bool(data["resampled"]),
            log_evidence=float(data["log_evidence"]),
            spread=float(data["spread"]),
            energy_j=float(data["energy_j"]),
            ops_executed=int(data["ops_executed"]),
            energy_breakdown_j=dict(data["energy_breakdown_j"]),
            step_energy_j=float(data["step_energy_j"]),
            step_ops=int(data["step_ops"]),
            substrate=str(data["substrate"]),
            error_m=(
                None if data.get("error_m") is None else float(data["error_m"])
            ),
            state_lost=bool(data.get("state_lost", False)),
            replayed_steps=int(data.get("replayed_steps", 0)),
            batch_size=int(data.get("batch_size", 1)),
            queue_s=float(data.get("queue_s", 0.0)),
            total_s=float(data.get("total_s", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "TrackStepResponse":
        return cls.from_dict(strict_loads(text))


__all__ = [
    "DEFAULT_MODEL",
    "InferenceRequest",
    "InferenceResponse",
    "RequestExecutionError",
    "ServiceOverloaded",
    "TrackError",
    "TrackInit",
    "TrackOpenRequest",
    "TrackStepRequest",
    "TrackStepResponse",
    "WorkerCrashed",
]
