"""Pre-warmed session pools, one per (substrate, model) pair.

Building a CIM session is expensive -- weight programming with frozen
mismatch, ADC/DAC calibration, hardware-RNG bias trimming -- so the
service builds each session **once** at warm-up and fills the rest of
the pool with :meth:`~repro.api.substrates.MCDropoutSession.clone`
copies.  Clones share no mutable state, so micro-batches on different
pool members can run concurrently, and every member produces bit-for-bit
identical results for identical requests.

Determinism requires the warm-up to be reproducible, so a pool always

- constructs its primary session with ``np.random.default_rng(session_seed)``
  (fixing the hardware instance: mismatch draws, comparator offsets,
  RNG trim), and
- **calibrates** it.  Without calibration a macro pins its input-DAC
  grid lazily from the first input it serves, which would make results
  depend on request history; calibration pins every grid up front, so
  ``run()`` is stateless with respect to results.  When the caller has
  no representative inputs, deterministic standard-normal ones are
  synthesized from ``session_seed``.

:meth:`SessionPool.reference_session` rebuilds the same session from
scratch -- the object the parity tests and the CI smoke step compare
service responses against.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from repro.api.substrates import MCDropoutSession, SubstrateConfig, get_substrate
from repro.nn.sequential import Sequential

DEFAULT_CALIBRATION_SAMPLES = 32


def default_calibration_inputs(
    model: Sequential, session_seed: int = 0
) -> np.ndarray:
    """Deterministic standard-normal calibration batch for ``model``."""
    width = model.dense_layers()[0].weight.value.shape[0]
    return np.random.default_rng(session_seed).normal(
        size=(DEFAULT_CALIBRATION_SAMPLES, width)
    )


def build_reference_session(
    substrate: str | SubstrateConfig,
    model: Sequential,
    n_iterations: int = 30,
    calibration_inputs: np.ndarray | None = None,
    session_seed: int = 0,
) -> MCDropoutSession:
    """One session built exactly as a pool with these arguments would.

    The cheap path to a parity oracle: cold callers (the CI smoke
    script, the serving bench) get the reference without paying for a
    throwaway pool's warm-up on top of it.
    """
    if calibration_inputs is None:
        calibration_inputs = default_calibration_inputs(model, session_seed)
    return get_substrate(substrate).mc_dropout_session(
        model,
        n_iterations=int(n_iterations),
        calibration_inputs=np.atleast_2d(
            np.asarray(calibration_inputs, dtype=float)
        ),
        rng=np.random.default_rng(int(session_seed)),
    )


class SessionPool:
    """``size`` interchangeable pre-warmed sessions for one pair.

    Args:
        substrate: registered substrate (name or config).
        model: the served network.
        n_iterations: MC-Dropout depth of every session.
        size: pool width (concurrent micro-batches for this pair).
        calibration_inputs: representative activations for ADC/DAC
            pinning; defaults to :func:`default_calibration_inputs`.
        session_seed: construction generator seed (hardware instance).
    """

    def __init__(
        self,
        substrate: str | SubstrateConfig,
        model: Sequential,
        n_iterations: int = 30,
        size: int = 1,
        calibration_inputs: np.ndarray | None = None,
        session_seed: int = 0,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.substrate = get_substrate(substrate)
        self.model = model
        self.n_iterations = int(n_iterations)
        self.size = int(size)
        self.session_seed = int(session_seed)
        self.calibration_inputs = (
            default_calibration_inputs(model, session_seed)
            if calibration_inputs is None
            else np.atleast_2d(np.asarray(calibration_inputs, dtype=float))
        )
        self.in_features = model.dense_layers()[0].weight.value.shape[0]
        primary = self._build_session()
        self._sessions = [primary] + [
            primary.clone() for _ in range(self.size - 1)
        ]
        self._idle: asyncio.Queue[MCDropoutSession] = asyncio.Queue()
        for session in self._sessions:
            self._idle.put_nowait(session)

    def reset_idle(self) -> None:
        """Rebuild the idle queue with every session.

        An ``asyncio.Queue`` binds to the first event loop that touches
        it, so a service restarted on a fresh loop (each ``infer_many``
        call runs its own) re-creates the queue while keeping the warm
        sessions.
        """
        self._idle = asyncio.Queue()
        for session in self._sessions:
            self._idle.put_nowait(session)

    def _build_session(self) -> MCDropoutSession:
        return build_reference_session(
            self.substrate,
            self.model,
            n_iterations=self.n_iterations,
            calibration_inputs=self.calibration_inputs,
            session_seed=self.session_seed,
        )

    def reference_session(self) -> MCDropoutSession:
        """A fresh session identical to every pool member.

        This is the parity oracle: a pinned-mask ``run()`` on it must
        reproduce a service response for the same request bit-for-bit.
        """
        return self._build_session()

    async def acquire(self) -> MCDropoutSession:
        """Borrow an idle session (waits if every member is busy)."""
        return await self._idle.get()

    def acquire_nowait(self) -> MCDropoutSession:
        """Borrow an idle session without an event loop.

        Worker shards (:mod:`repro.serve.workers`) process one batch at
        a time from a plain loop, so they borrow synchronously; raises
        if every member is busy rather than blocking.
        """
        try:
            return self._idle.get_nowait()
        except asyncio.QueueEmpty:
            raise RuntimeError(
                f"no idle session in pool of {self.size} "
                f"({self.substrate.name})"
            ) from None

    def release(self, session: MCDropoutSession) -> None:
        """Return a borrowed session to the pool."""
        self._idle.put_nowait(session)

    @property
    def idle(self) -> int:
        return self._idle.qsize()

    def describe(self) -> dict[str, Any]:
        return {
            "substrate": self.substrate.name,
            "n_iterations": self.n_iterations,
            "size": self.size,
            "idle": self.idle,
            "in_features": self.in_features,
        }


__all__ = [
    "SessionPool",
    "build_reference_session",
    "default_calibration_inputs",
    "DEFAULT_CALIBRATION_SAMPLES",
]
