"""Request-level asyncio inference service with dynamic micro-batching.

The public entry points of the stack used to be caller-owned blocking
sessions; this module redesigns the API around **stateless concurrent
requests**:

- :class:`InferenceService` owns a pre-warmed :class:`~repro.serve.pool.
  SessionPool` per (substrate, model) pair and admits requests through a
  bounded queue (:class:`~repro.runtime.QueuePolicy`) -- beyond the
  bound, ``submit`` raises :class:`~repro.serve.types.ServiceOverloaded`
  instead of queueing without limit.
- A :class:`Batcher` per pair coalesces concurrent ``submit`` calls into
  ``session.run_batch`` micro-batches under the
  :class:`~repro.runtime.BatchPolicy` ``(max_batch, max_wait_ms)``
  window, amortising dropout-mask drawing and the O(T^2) ordering search
  across every same-seed request in the batch.
- Execution is pluggable: micro-batches run either on worker threads
  over the in-process :class:`~repro.serve.pool.SessionPool`
  (:class:`LocalBackend`, the default) or fanned out across spawned
  shard processes (:class:`ShardedBackend` over a
  :class:`~repro.serve.workers.WorkerPool`) when the
  :class:`~repro.runtime.policy.ShardPolicy` asks for ``workers >= 1``
  -- same request path, same bits, N cores.
- Results are deterministic **per request**: each response is bit-for-bit
  what :func:`reference_run` produces on a fresh identically-built
  session with the same seed, no matter how the request was batched or
  which shard served it, and each response's ops/energy come from the
  engine's scoped per-call ledgers (living in whichever process executed
  the batch), so concurrent requests never bleed metering into each
  other.

Use it in-process (async)::

    service = InferenceService(model, substrates=["cim-ordered"])
    async with service:
        response = await service.submit(InferenceRequest(x, substrate="cim-ordered"))

or synchronously::

    responses = service.infer_many(requests)

or over HTTP via :mod:`repro.serve.http` / ``repro serve``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.api.substrates import MCDropoutSession, available_substrates
from repro.nn.sequential import Sequential
from repro.runtime.policy import (
    BatchPolicy,
    QueuePolicy,
    ShardPolicy,
    TrackPolicy,
)
from repro.serve.execution import (
    Outcome,
    RequestItem,
    reference_run,
    run_grouped,
)
from repro.serve.pool import SessionPool
from repro.serve.types import (
    DEFAULT_MODEL,
    InferenceRequest,
    InferenceResponse,
    RequestExecutionError,
    ServiceOverloaded,
)

PairKey = tuple[str, str]


@dataclass
class ServiceStats:
    """Loop-thread counters exposed by ``/stats``.

    Attributes:
        received: requests admitted past the queue bound.
        completed: responses delivered.
        failed: requests whose execution raised.
        rejected: admissions refused with :class:`ServiceOverloaded`.
        batches: micro-batches dispatched.
        batched_requests: requests served in micro-batches of size > 1.
        max_batch_observed: largest micro-batch dispatched so far.
        per_substrate: completed-request count per substrate name.
    """

    received: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_observed: int = 0
    per_substrate: dict[str, int] = field(default_factory=dict)

    def mean_batch_size(self) -> float:
        if self.batches == 0:
            return 0.0
        return (self.completed + self.failed) / self.batches


@dataclass
class _Pending:
    """One admitted request waiting in a batcher queue."""

    request: InferenceRequest
    future: asyncio.Future
    admitted_at: float


_SHUTDOWN = object()


class LocalBackend:
    """Executes micro-batches on worker threads over in-process pools.

    The single-process path: borrow a pre-warmed session from the pair's
    :class:`SessionPool`, run :func:`~repro.serve.execution.run_grouped`
    on the shared thread pool, return the session.  Pool width bounds
    per-pair concurrency.
    """

    def __init__(
        self,
        pools: Mapping[PairKey, SessionPool],
        executor: ThreadPoolExecutor,
    ):
        self._pools = dict(pools)
        self._executor = executor

    async def execute(
        self, key: PairKey, items: Sequence[RequestItem]
    ) -> list[Outcome]:
        loop = asyncio.get_running_loop()
        pool = self._pools[key]
        session = await pool.acquire()
        try:
            return await loop.run_in_executor(
                self._executor, run_grouped, session, key[0], key[1], items
            )
        finally:
            pool.release(session)


class ShardedBackend:
    """Executes micro-batches across a :class:`~repro.serve.workers.
    WorkerPool` of shard processes (see :mod:`repro.serve.workers`)."""

    def __init__(self, worker_pool: Any):
        self._worker_pool = worker_pool

    async def execute(
        self, key: PairKey, items: Sequence[RequestItem]
    ) -> list[Outcome]:
        return await self._worker_pool.execute(key, items)


class Batcher:
    """Coalesces one (substrate, model) pair's requests into micro-batches.

    The collection loop takes the first waiting request, then keeps
    accepting company until the batch hits ``policy.max_batch`` or the
    first request has waited ``policy.max_wait_ms``; the assembled batch
    is dispatched as a task so collection continues while the backend
    executes it (backend capacity -- pool width or shard count -- bounds
    per-pair concurrency).
    """

    def __init__(
        self,
        key: PairKey,
        policy: BatchPolicy,
        backend: LocalBackend | ShardedBackend,
        stats: ServiceStats,
    ):
        self.key = key
        self.substrate = key[0]
        self.policy = policy
        self._backend = backend
        self._stats = stats
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._dispatches: set[asyncio.Task] = set()

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        if self._task is None:
            return
        self._queue.put_nowait(_SHUTDOWN)
        await self._task
        self._task = None
        if self._dispatches:
            await asyncio.gather(*self._dispatches, return_exceptions=True)
        # Fail anything that slipped into the queue behind the shutdown
        # sentinel -- an abandoned future would hang its awaiter forever.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if leftover is _SHUTDOWN or leftover.future.done():
                continue
            self._stats.failed += 1
            leftover.future.set_exception(
                RequestExecutionError("service stopped before execution")
            )

    def put(self, pending: _Pending) -> None:
        self._queue.put_nowait(pending)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                break
            batch = [first]
            deadline = loop.time() + self.policy.max_wait_s
            while len(batch) < self.policy.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Zero-wait policies still drain whatever is already
                    # queued, so bursts coalesce even at max_wait_ms=0.
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), timeout
                        )
                    except asyncio.TimeoutError:
                        break
                if item is _SHUTDOWN:
                    stopping = True
                    break
                batch.append(item)
            task = loop.create_task(self._dispatch(batch))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        started_at = loop.time()
        self._stats.batches += 1
        self._stats.max_batch_observed = max(
            self._stats.max_batch_observed, len(batch)
        )
        if len(batch) > 1:
            self._stats.batched_requests += len(batch)
        # wire_item() keeps the Batcher request-shape agnostic: the same
        # coalescing loop batches stateless /infer requests and track
        # steps (repro.serve.tracks), whose items differ on the wire.
        items: list[RequestItem] = [p.request.wire_item() for p in batch]
        outcomes: Sequence[Any]
        try:
            outcomes = await self._backend.execute(self.key, items)
        except ServiceOverloaded as error:
            # Shard death (WorkerCrashed) or exhausted capacity: the
            # whole batch gets the retryable 503, never a hung future.
            outcomes = [error] * len(batch)
        except Exception as error:  # backend-level failure: fail every item
            wrapped = RequestExecutionError(f"{type(error).__name__}: {error}")
            wrapped.__cause__ = error
            outcomes = [wrapped] * len(batch)
        for pending, outcome in zip(batch, outcomes):
            if pending.future.done():
                continue
            if isinstance(outcome, Exception):
                self._stats.failed += 1
                pending.future.set_exception(outcome)
            else:
                self._stats.completed += 1
                self._stats.per_substrate[self.substrate] = (
                    self._stats.per_substrate.get(self.substrate, 0) + 1
                )
                outcome.queue_s = started_at - pending.admitted_at
                outcome.total_s = loop.time() - pending.admitted_at
                pending.future.set_result(outcome)


class InferenceService:
    """Asyncio inference front end over pre-warmed session pools.

    Args:
        models: the served network, or a ``{name: Sequential}`` mapping
            for multi-model serving (a bare model is registered under
            ``"default"``).
        substrates: registered substrate names to open pools for
            (default: every registered substrate).
        n_iterations: MC-Dropout depth of every session.
        batch: micro-batching policy (see :class:`BatchPolicy`).
        queue: admission policy (see :class:`QueuePolicy`).
        shard: scale-out policy (see :class:`~repro.runtime.policy.
            ShardPolicy`); ``workers >= 1`` fans micro-batches out over
            that many spawned shard processes, each owning its own
            calibrated session pools (default: in-process execution).
        pool_size: pre-warmed sessions per (substrate, model) pair
            (in-process mode; shard processes execute serially and pin
            their pool width to 1 -- add shards for concurrency).
        calibration_inputs: representative activations for session
            calibration (default: deterministic synthetic ones).
        session_seed: hardware-instantiation seed shared by every pool
            session and by :meth:`reference_session` -- part of the
            determinism contract.
        track_world: optional :class:`~repro.serve.tracks.TrackWorld`;
            when given, the service also serves stateful streaming
            tracks (``/track/open`` / ``/track/step`` / ``/track/close``
            and :meth:`open_track`) over localization sessions built
            from it.
        tracks: track lifecycle bounds (see :class:`~repro.runtime.
            policy.TrackPolicy`).
        track_substrates: substrates to warm track prototypes for
            (default: the served ``substrates``).
    """

    def __init__(
        self,
        models: Sequential | Mapping[str, Sequential],
        substrates: Sequence[str] | None = None,
        n_iterations: int = 30,
        batch: BatchPolicy | None = None,
        queue: QueuePolicy | None = None,
        shard: ShardPolicy | None = None,
        pool_size: int = 1,
        calibration_inputs: np.ndarray | None = None,
        session_seed: int = 0,
        track_world: Any = None,
        tracks: TrackPolicy | None = None,
        track_substrates: Sequence[str] | None = None,
    ):
        if isinstance(models, Mapping):
            self.models = dict(models)
        else:
            self.models = {DEFAULT_MODEL: models}
        if not self.models:
            raise ValueError("need at least one model to serve")
        from repro.api.substrates import get_substrate

        self.substrates = [
            get_substrate(name).name
            for name in (
                substrates if substrates is not None else available_substrates()
            )
        ]
        if not self.substrates:
            raise ValueError("need at least one substrate to serve")
        self.n_iterations = int(n_iterations)
        self.batch_policy = batch or BatchPolicy()
        self.queue_policy = queue or QueuePolicy()
        self.shard_policy = shard or ShardPolicy()
        self.pool_size = int(pool_size)
        self.calibration_inputs = calibration_inputs
        self.session_seed = int(session_seed)
        self.track_world = track_world
        self.track_policy = tracks or TrackPolicy()
        if track_substrates is None:
            self.track_substrates = list(self.substrates)
        else:
            self.track_substrates = [
                get_substrate(name).name for name in track_substrates
            ]
        self._track_manager: Any = None
        self._keys: set[PairKey] = {
            (substrate, model)
            for substrate in self.substrates
            for model in self.models
        }
        self._in_features = {
            name: model.dense_layers()[0].weight.value.shape[0]
            for name, model in self.models.items()
        }
        self._pools: dict[PairKey, SessionPool] = {}
        self._batchers: dict[PairKey, Batcher] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._worker_pool: Any = None
        self._pending = 0
        self._started = False
        self._started_at: float | None = None
        self.stats = ServiceStats()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Warm the execution backend and start the batchers (idempotent).

        In-process mode warms one :class:`SessionPool` per pair; sharded
        mode (``shard.workers >= 1``) spawns the worker shards instead
        and waits until every shard has warmed its own pools.
        """
        if self._started:
            return
        backend: LocalBackend | ShardedBackend
        if self.shard_policy.workers >= 1:
            if self._worker_pool is None:
                from repro.serve.workers import WorkerPool, WorkerSpec

                self._worker_pool = WorkerPool(
                    WorkerSpec(
                        models=dict(self.models),
                        substrates=tuple(self.substrates),
                        n_iterations=self.n_iterations,
                        calibration_inputs=self.calibration_inputs,
                        session_seed=self.session_seed,
                        track_world=self.track_world,
                        track_substrates=tuple(self.track_substrates),
                    ),
                    self.shard_policy,
                )
            await self._worker_pool.start()
            backend = ShardedBackend(self._worker_pool)
        else:
            if not self._pools:
                for substrate in self.substrates:
                    for model_name, model in self.models.items():
                        self._pools[(substrate, model_name)] = SessionPool(
                            substrate,
                            model,
                            n_iterations=self.n_iterations,
                            size=self.pool_size,
                            calibration_inputs=self.calibration_inputs,
                            session_seed=self.session_seed,
                        )
            for pool in self._pools.values():
                pool.reset_idle()
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, len(self._pools) * self.pool_size),
                thread_name_prefix="repro-serve",
            )
            backend = LocalBackend(self._pools, self._executor)
        for key in sorted(self._keys):
            batcher = Batcher(key, self.batch_policy, backend, self.stats)
            batcher.start()
            self._batchers[key] = batcher
        if self.track_world is not None:
            from repro.serve.tracks import (
                LocalTrackBackend,
                ShardedTrackBackend,
                TrackManager,
                TrackStore,
            )

            if self._track_manager is None:
                if self._worker_pool is not None:
                    track_backend: Any = ShardedTrackBackend(
                        self._worker_pool
                    )
                else:
                    # Build the prototypes off-loop: calibrating one
                    # session per substrate takes real time.
                    store = await asyncio.get_running_loop().run_in_executor(
                        None,
                        TrackStore,
                        self.track_world,
                        tuple(self.track_substrates),
                    )
                    track_backend = LocalTrackBackend(store)
                self._track_manager = TrackManager(
                    track_backend,
                    policy=self.track_policy,
                    batch=self.batch_policy,
                    substrates=self.track_substrates,
                )
            await self._track_manager.start()
        self._started = True
        # repro: ignore[DET003] uptime metadata, not a result field
        self._started_at = time.time()

    async def stop(self) -> None:
        """Drain the batchers, release threads, stop worker shards.

        Worker shards are stopped with the shard policy's join deadline
        (terminate -> kill escalation), so no child process can outlive
        the service.
        """
        if not self._started:
            return
        # Refuse new submissions first: a submit racing this coroutine
        # must see the flag and be rejected, not enqueue into a batcher
        # whose drain has already run (its future would never resolve).
        self._started = False
        if self._track_manager is not None:
            # Live tracks die with the service; the manager closes its
            # per-home step batchers and the sweep task first so no
            # step future is abandoned mid-drain.
            await self._track_manager.stop()
            self._track_manager = None
        for batcher in self._batchers.values():
            await batcher.close()
        self._batchers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._worker_pool is not None:
            # stop() joins processes; keep the event loop responsive.
            await asyncio.get_running_loop().run_in_executor(
                None, self._worker_pool.stop
            )

    async def __aenter__(self) -> "InferenceService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- request path ------------------------------------------------------

    def _resolve_key(self, request: InferenceRequest) -> PairKey:
        from repro.api.substrates import get_substrate

        substrate = get_substrate(request.substrate).name
        key = (substrate, request.model)
        if key not in self._keys:
            raise KeyError(
                f"no pool for substrate {substrate!r} / model "
                f"{request.model!r}; serving "
                f"{sorted(self._keys)}"
            )
        return key

    async def submit(self, request: InferenceRequest) -> InferenceResponse:
        """Admit one request; resolves when its micro-batch completes.

        Raises:
            ServiceOverloaded: the bounded queue is at ``max_pending``.
            KeyError: unknown substrate or model.
            ValueError: input width does not match the served model.
        """
        if not self._started:
            raise RuntimeError(
                "service is not started (use 'async with service:' or "
                "await service.start())"
            )
        key = self._resolve_key(request)
        in_features = self._in_features[request.model]
        if request.inputs.shape[-1] != in_features:
            raise ValueError(
                f"request inputs have width {request.inputs.shape[-1]}, "
                f"model {request.model!r} expects {in_features}"
            )
        if self._pending >= self.queue_policy.max_pending:
            self.stats.rejected += 1
            raise ServiceOverloaded(
                self._pending, self.queue_policy.max_pending
            )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            request=request,
            future=loop.create_future(),
            admitted_at=loop.time(),
        )
        self._pending += 1
        self.stats.received += 1
        try:
            self._batchers[key].put(pending)
            return await pending.future
        finally:
            self._pending -= 1

    # -- streaming tracks --------------------------------------------------

    def _manager(self) -> Any:
        if not self._started:
            raise RuntimeError(
                "service is not started (use 'async with service:' or "
                "await service.start())"
            )
        if self._track_manager is None:
            from repro.serve.types import TrackError

            raise TrackError(
                "disabled",
                "track serving is disabled: the service was built "
                "without a track_world",
            )
        return self._track_manager

    async def track_open(self, request: Any) -> dict:
        """Open one streaming track (see :class:`~repro.serve.types.
        TrackOpenRequest`); 503 beyond ``TrackPolicy.max_tracks``."""
        return await self._manager().open(request)

    async def track_step(self, request: Any) -> Any:
        """Serve one measurement of an open track."""
        return await self._manager().step(request)

    async def track_close(self, track_id: str) -> dict:
        """Close a track and release its shard-side state."""
        return await self._manager().close(track_id)

    async def open_track(
        self,
        substrate: str = "cim",
        init: Any = None,
        seed: int = 0,
        track_id: str | None = None,
    ) -> Any:
        """Open a track and return an async :class:`~repro.serve.tracks.
        TrackHandle` (``await handle.step(control, depth)``)."""
        from repro.serve.tracks import TrackHandle
        from repro.serve.types import TrackOpenRequest

        if init is None:
            raise ValueError("open_track needs an init (TrackInit)")
        result = await self.track_open(
            TrackOpenRequest(
                init=init, substrate=substrate, seed=seed, track_id=track_id
            )
        )
        return TrackHandle(
            self._manager(), result["track_id"], result["substrate"]
        )

    def infer_many(
        self, requests: Iterable[InferenceRequest]
    ) -> list[InferenceResponse]:
        """Synchronous convenience wrapper: serve ``requests`` concurrently.

        Owns the whole lifecycle (start, concurrent submission, stop) on
        a private event loop, applying client-side flow control at the
        queue policy's ``max_pending`` so the call never rejects itself.
        Responses come back in request order.  Must not be called while
        the service is already running on another loop.
        """
        if self._started:
            raise RuntimeError(
                "infer_many owns the service lifecycle; the service is "
                "already started -- use 'await service.submit(...)' instead"
            )
        request_list = list(requests)

        async def _drive() -> list[InferenceResponse]:
            semaphore = asyncio.Semaphore(self.queue_policy.max_pending)

            async def one(request: InferenceRequest) -> InferenceResponse:
                async with semaphore:
                    return await self.submit(request)

            async with self:
                return list(
                    await asyncio.gather(*(one(r) for r in request_list))
                )

        return asyncio.run(_drive())

    # -- introspection -----------------------------------------------------

    def reference_session(
        self, substrate: str, model: str = DEFAULT_MODEL
    ) -> MCDropoutSession:
        """A fresh session identical to the ones serving ``substrate``.

        ``reference_run(service.reference_session(s), x, seed)`` is the
        oracle every response must match bit-for-bit.
        """
        from repro.api.substrates import get_substrate

        substrate = get_substrate(substrate).name
        key = (substrate, model)
        if key not in self._pools:
            # Before start() the pools do not exist yet; build the bare
            # session so parity checks can run against a cold service too.
            if substrate not in self.substrates or model not in self.models:
                raise KeyError(
                    f"not serving substrate {substrate!r} / model {model!r}"
                )
            from repro.serve.pool import build_reference_session

            return build_reference_session(
                substrate,
                self.models[model],
                n_iterations=self.n_iterations,
                calibration_inputs=self.calibration_inputs,
                session_seed=self.session_seed,
            )
        return self._pools[key].reference_session()

    def health(self) -> dict[str, Any]:
        """Liveness summary for ``/healthz``.

        ``status`` is ``"degraded"`` -- with the respawning shard ids --
        while any worker shard is dead or warming a replacement, so load
        balancers can drain early instead of eating retryable 503s;
        ``"ok"`` otherwise.
        """
        respawning: list[int] = []
        if self._worker_pool is not None and self._started:
            respawning = self._worker_pool.respawning_shards()
        return {
            "status": "degraded" if respawning else "ok",
            "respawning_shards": respawning,
        }

    def describe(self) -> dict[str, Any]:
        """Static service configuration (for ``/healthz``)."""
        return {
            "substrates": sorted(self.substrates),
            "models": sorted(self.models),
            "n_iterations": self.n_iterations,
            "batch": {
                "max_batch": self.batch_policy.max_batch,
                "max_wait_ms": self.batch_policy.max_wait_ms,
            },
            "queue": {"max_pending": self.queue_policy.max_pending},
            "shard": {
                "workers": self.shard_policy.workers,
                "affinity": self.shard_policy.affinity,
                "respawn": self.shard_policy.respawn,
            },
            "pool_size": self.pool_size,
            "session_seed": self.session_seed,
            "started": self._started,
            "tracks": (
                None
                if self._track_manager is None
                else self._track_manager.describe()
            ),
        }

    def stats_snapshot(self) -> dict[str, Any]:
        """Live counters (for ``/stats``)."""
        return {
            "received": self.stats.received,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "rejected": self.stats.rejected,
            "batches": self.stats.batches,
            "batched_requests": self.stats.batched_requests,
            "max_batch_observed": self.stats.max_batch_observed,
            "mean_batch_size": self.stats.mean_batch_size(),
            "per_substrate": dict(self.stats.per_substrate),
            "pending": self._pending,
            "pools": {
                f"{substrate}/{model}": pool.describe()
                for (substrate, model), pool in self._pools.items()
            },
            "shards": (
                None
                if self._worker_pool is None
                else self._worker_pool.describe()
            ),
            "uptime_s": (
                None
                if self._started_at is None
                # repro: ignore[DET003] uptime metadata, not a result field
                else time.time() - self._started_at
            ),
            "tracks": (
                None
                if self._track_manager is None
                else self._track_manager.stats_snapshot()
            ),
        }


__all__ = [
    "Batcher",
    "InferenceService",
    "LocalBackend",
    "ServiceStats",
    "ShardedBackend",
    "reference_run",
]
