"""Request-level inference serving over the substrate sessions.

This package lifts the paper's circuit-level batching trade-off to the
serving level: independent concurrent requests are coalesced into
``session.run_batch`` micro-batches over pools of pre-warmed sessions,
with results that stay bit-for-bit equal to a standalone pinned-mask
``session.run()`` for the same seed no matter how requests were batched.

- :mod:`repro.serve.types` -- :class:`InferenceRequest` /
  :class:`InferenceResponse` schemas (JSON round-trip, strict NaN-safe
  wire encoding) and :class:`ServiceOverloaded`.
- :mod:`repro.serve.pool` -- :class:`SessionPool`: pre-warmed, cloned,
  calibrated sessions per (substrate, model) pair.
- :mod:`repro.serve.execution` -- the one micro-batch execution path
  every backend shares; :func:`reference_run` is the determinism oracle.
- :mod:`repro.serve.service` -- :class:`InferenceService` /
  :class:`Batcher`: asyncio submission, ``(max_batch, max_wait_ms)``
  coalescing, bounded-queue backpressure, per-request scoped metering.
- :mod:`repro.serve.workers` -- :class:`WorkerPool` /
  :class:`WorkerSpec`: sharded scale-out over spawned worker processes
  (least-loaded + substrate-affinity routing, crash detection with 503
  + respawn), selected with ``ShardPolicy(workers=N)``.
- :mod:`repro.serve.tracks` -- :class:`TrackManager` / :class:`TrackStore`:
  stateful streaming localization tracks (sticky shard routing, bounded
  admission + idle-TTL eviction via
  :class:`~repro.runtime.policy.TrackPolicy`, crash recovery by
  measurement-log replay or explicit ``state_lost`` re-init), with
  :func:`reference_track_run` as the stream-determinism oracle.
- :mod:`repro.serve.http` -- stdlib HTTP endpoint (``/infer``,
  ``/track/open`` / ``/track/step`` / ``/track/close``, ``/healthz``,
  ``/stats``) behind ``repro serve [--workers N] [--tracks]``.
- :mod:`repro.serve.demo` -- the deterministic quickstart model and
  demo track world.

Quick start::

    from repro.serve import InferenceRequest, InferenceService
    from repro.serve.demo import demo_model

    service = InferenceService(demo_model(), substrates=["cim-ordered"])
    [response] = service.infer_many(
        [InferenceRequest(x, substrate="cim-ordered", seed=7)]
    )
    response.result.mean, response.result.energy_j
"""

from repro.runtime.policy import BatchPolicy, QueuePolicy, ShardPolicy, TrackPolicy
from repro.serve.pool import (
    SessionPool,
    build_reference_session,
    default_calibration_inputs,
)
from repro.serve.service import (
    Batcher,
    InferenceService,
    ServiceStats,
    reference_run,
)
from repro.serve.tracks import (
    LocalTrackBackend,
    ShardedTrackBackend,
    TrackHandle,
    TrackManager,
    TrackStore,
    TrackWorld,
    reference_track_run,
)
from repro.serve.types import (
    DEFAULT_MODEL,
    InferenceRequest,
    InferenceResponse,
    RequestExecutionError,
    ServiceOverloaded,
    TrackError,
    TrackInit,
    TrackOpenRequest,
    TrackStepRequest,
    TrackStepResponse,
    WorkerCrashed,
)
from repro.serve.workers import WorkerPool, WorkerSpec

__all__ = [
    "BatchPolicy",
    "Batcher",
    "DEFAULT_MODEL",
    "InferenceRequest",
    "InferenceResponse",
    "InferenceService",
    "LocalTrackBackend",
    "QueuePolicy",
    "RequestExecutionError",
    "ServiceOverloaded",
    "ServiceStats",
    "SessionPool",
    "ShardPolicy",
    "ShardedTrackBackend",
    "TrackError",
    "TrackHandle",
    "TrackInit",
    "TrackManager",
    "TrackOpenRequest",
    "TrackPolicy",
    "TrackStepRequest",
    "TrackStepResponse",
    "TrackStore",
    "TrackWorld",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerSpec",
    "build_reference_session",
    "default_calibration_inputs",
    "reference_run",
    "reference_track_run",
]
