"""Micro-batch execution shared by every serving backend.

The service has two ways to run an assembled micro-batch -- on a worker
thread borrowing a session from the in-process pool, or inside a spawned
shard process (:mod:`repro.serve.workers`).  Both MUST execute requests
identically, or the per-request determinism contract would depend on the
deployment shape.  This module is that single code path:

- :func:`reference_run` -- the determinism oracle: what one standalone
  pinned-mask ``session.run`` produces for a request seed.
- :func:`run_grouped` -- executes a micro-batch of wire-level request
  items grouped by seed, handing every item a generator restored to the
  exact post-draw state its standalone reference run would consume, so
  coalescing (and sharding) changes throughput, never bits.

Items travel as plain ``(inputs, seed, request_id)`` tuples rather than
request objects so the same payload can cross a multiprocessing pipe
unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.api.results import InferenceResult
from repro.api.substrates import MaskPlan, MCDropoutSession
from repro.serve.types import (
    InferenceResponse,
    RequestExecutionError,
)

# One wire-level request inside a micro-batch: (inputs, seed, request_id).
RequestItem = tuple[np.ndarray, int, Optional[str]]

Outcome = Union[InferenceResponse, RequestExecutionError]


def reference_run(
    session: MCDropoutSession, inputs: np.ndarray, seed: int
) -> InferenceResult:
    """The per-request determinism oracle.

    One base generator seeded with the request seed draws (and orders)
    the mask plan, then the *same* generator -- now advanced past the
    draw -- feeds the pinned-mask run.  The service reproduces this
    exactly for every request by snapshotting the post-draw generator
    state and handing each coalesced item a generator restored to it.
    """
    base = np.random.default_rng(seed)
    plan = session.draw_masks(base)
    return session.run(inputs, rng=base, masks=plan)


def post_draw_generators(
    session: MCDropoutSession, seed: int, count: int
) -> tuple[MaskPlan, list[np.random.Generator]]:
    """One shared mask plan plus ``count`` identical post-draw generators."""
    base = np.random.default_rng(seed)
    plan = session.draw_masks(base)
    state = base.bit_generator.state
    generators = []
    for _ in range(count):
        generator = np.random.default_rng(0)
        generator.bit_generator.state = state
        generators.append(generator)
    return plan, generators


def run_grouped(
    session: MCDropoutSession,
    substrate: str,
    model: str,
    items: Sequence[RequestItem],
) -> list[Outcome]:
    """Run one micro-batch of request items on a borrowed session.

    Items are grouped by seed; each group shares one mask-plan draw and
    every item gets a generator restored to the post-draw state, which
    is exactly what :func:`reference_run` would hand a standalone run --
    so neither batch composition nor the executing process changes bits.

    Returns one outcome per item, in item order: an
    :class:`InferenceResponse` on success, or a
    :class:`RequestExecutionError` (original exception chained as
    ``__cause__``) for every item of a group whose execution raised.
    """
    groups: dict[int, list[int]] = {}
    for index, (_, seed, _) in enumerate(items):
        groups.setdefault(int(seed), []).append(index)
    outcomes: list[Optional[Outcome]] = [None] * len(items)
    for seed, indexes in groups.items():
        try:
            plan, generators = post_draw_generators(
                session, seed, len(indexes)
            )
            result = session.run_batch(
                [items[i][0] for i in indexes],
                masks=plan,
                item_rngs=generators,
            )
            for position, index in enumerate(indexes):
                request_id = items[index][2]
                outcomes[index] = InferenceResponse(
                    result=result.results[position],
                    substrate=substrate,
                    model=model,
                    seed=seed,
                    request_id=request_id,
                    batch_size=len(items),
                    group_size=len(indexes),
                )
        except Exception as error:
            # Mark it as an *execution* failure (vs a submission-time
            # client error) so transports can answer 500, not 400.
            wrapped = RequestExecutionError(
                f"{type(error).__name__}: {error}"
            )
            wrapped.__cause__ = error
            for index in indexes:
                outcomes[index] = wrapped
    return [outcome for outcome in outcomes if outcome is not None]


__all__ = [
    "Outcome",
    "RequestItem",
    "post_draw_generators",
    "reference_run",
    "run_grouped",
]
