"""Depth-frame feature encoding and regression-target scaling."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scene.se3 import Pose, matrix_to_euler


def occlude_depth(
    depth: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    occluder_depth: float = 0.45,
) -> np.ndarray:
    """Paint a near-range occluder rectangle over a depth frame.

    Models the paper's motivating disturbance -- people moving through the
    scene -- by overwriting a random rectangle covering ``fraction`` of the
    image with a close depth.  Used by the Fig. 3f experiment to create
    frames of varying difficulty.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    depth = np.asarray(depth, dtype=float).copy()
    if fraction == 0.0:
        return depth
    height, width = depth.shape
    area = fraction * height * width
    h = max(2, int(np.sqrt(area * rng.uniform(0.5, 2.0))))
    w = max(2, int(area / h))
    h, w = min(h, height), min(w, width)
    row = int(rng.integers(0, height - h + 1))
    col = int(rng.integers(0, width - w + 1))
    depth[row : row + h, col : col + w] = occluder_depth * (
        1.0 + 0.05 * rng.normal(size=(h, w))
    )
    return depth


class FrameEncoder:
    """Encodes a pair of depth frames into a network input vector.

    Each frame is block-averaged onto a coarse grid (NaNs treated as max
    range), normalised, and the pair plus their difference are concatenated
    -- a fixed-function front end standing in for the conv feature
    extractors of PoseNet-style models, sized for laptop-scale training.

    Args:
        grid: (rows, cols) of the coarse grid.
        max_range: depth used for invalid pixels and normalisation.
        include_intensity: also encode the shading channel.
    """

    def __init__(
        self,
        grid: tuple[int, int] = (9, 12),
        max_range: float = 6.0,
        include_intensity: bool = False,
    ):
        if grid[0] < 1 or grid[1] < 1:
            raise ValueError("grid must be positive")
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        self.grid = (int(grid[0]), int(grid[1]))
        self.max_range = float(max_range)
        self.include_intensity = bool(include_intensity)

    @property
    def feature_dim(self) -> int:
        cells = self.grid[0] * self.grid[1]
        per_frame = 2 if self.include_intensity else 1
        return cells * (2 * per_frame + 1)

    def _grid_average(self, image: np.ndarray, fill: float) -> np.ndarray:
        image = np.asarray(image, dtype=float)
        filled = np.where(np.isfinite(image), image, fill)
        rows, cols = self.grid
        h, w = filled.shape
        trim = filled[: (h // rows) * rows, : (w // cols) * cols]
        blocks = trim.reshape(rows, h // rows, cols, w // cols)
        return blocks.mean(axis=(1, 3))

    def encode_depth(self, depth: np.ndarray) -> np.ndarray:
        """One frame's normalised coarse-grid features, shape (cells,)."""
        grid = self._grid_average(depth, fill=self.max_range)
        return (np.clip(grid, 0.0, self.max_range) / self.max_range).reshape(-1)

    def encode_pair(
        self,
        depth_prev: np.ndarray,
        depth_cur: np.ndarray,
        intensity_prev: np.ndarray | None = None,
        intensity_cur: np.ndarray | None = None,
    ) -> np.ndarray:
        """Feature vector for a consecutive frame pair."""
        f_prev = self.encode_depth(depth_prev)
        f_cur = self.encode_depth(depth_cur)
        parts = [f_prev, f_cur, f_cur - f_prev]
        if self.include_intensity:
            if intensity_prev is None or intensity_cur is None:
                raise ValueError("intensity frames required by this encoder")
            parts.append(self._grid_average(intensity_prev, fill=0.0).reshape(-1))
            parts.append(self._grid_average(intensity_cur, fill=0.0).reshape(-1))
        return np.concatenate(parts)


def pose_to_target(relative: Pose) -> np.ndarray:
    """6-vector regression target (dx, dy, dz, droll, dpitch, dyaw)."""
    roll, pitch, yaw = matrix_to_euler(relative.rotation)
    return np.concatenate([relative.translation, [roll, pitch, yaw]])


def target_to_pose(target: np.ndarray) -> Pose:
    """Inverse of :func:`pose_to_target`."""
    target = np.asarray(target, dtype=float).reshape(-1)
    if target.size != 6:
        raise ValueError("target must have 6 elements")
    return Pose.from_euler(target[:3], roll=target[3], pitch=target[4], yaw=target[5])


@dataclass
class Standardizer:
    """Per-dimension z-score normalisation (features and targets).

    Attributes:
        mean: (D,) dimension means.
        std: (D,) dimension standard deviations (floored away from zero).
        clip: optional symmetric bound (in sigmas) applied by
            :meth:`transform`.  Feature front-ends on edge devices are
            range-bounded; without a clip, out-of-distribution inputs on
            near-constant feature dimensions produce unbounded z-scores
            that no fixed-point datapath could represent.
    """

    mean: np.ndarray
    std: np.ndarray
    clip: float | None = None

    @staticmethod
    def fit(
        values: np.ndarray, min_std: float = 1e-4, clip: float | None = None
    ) -> "Standardizer":
        values = np.atleast_2d(np.asarray(values, dtype=float))
        return Standardizer(
            mean=values.mean(axis=0),
            std=np.maximum(values.std(axis=0), min_std),
            clip=clip,
        )

    def transform(self, values: np.ndarray) -> np.ndarray:
        scaled = (np.asarray(values, dtype=float) - self.mean) / self.std
        if self.clip is not None:
            scaled = np.clip(scaled, -self.clip, self.clip)
        return scaled

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        return np.asarray(scaled, dtype=float) * self.std + self.mean

    def inverse_variance(self, scaled_variance: np.ndarray) -> np.ndarray:
        """Map predictive variances back to original units."""
        return np.asarray(scaled_variance, dtype=float) * self.std**2


# Regression targets use the same z-score machinery.
TargetScaler = Standardizer
