"""Trajectory accuracy metrics: ATE and RPE."""

from __future__ import annotations

import numpy as np

from repro.scene.se3 import Pose, rotation_angle


def ate_rmse(estimated: list[Pose], ground_truth: list[Pose]) -> float:
    """Absolute trajectory error: RMSE of position differences (m).

    Trajectories are compared in the shared world frame (both start at the
    same pose in our experiments, so no alignment step is applied).
    """
    if len(estimated) != len(ground_truth):
        raise ValueError("trajectory length mismatch")
    diffs = np.stack(
        [e.translation - g.translation for e, g in zip(estimated, ground_truth)],
        axis=0,
    )
    return float(np.sqrt(np.mean(np.sum(diffs**2, axis=1))))


def relative_pose_errors(
    estimated: list[Pose], ground_truth: list[Pose]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-step relative pose errors.

    Returns:
        (translation_errors, rotation_errors): (T-1,) arrays in meters and
        radians.
    """
    if len(estimated) != len(ground_truth):
        raise ValueError("trajectory length mismatch")
    t_errors, r_errors = [], []
    for k in range(1, len(estimated)):
        est_rel = estimated[k].relative_to(estimated[k - 1])
        gt_rel = ground_truth[k].relative_to(ground_truth[k - 1])
        delta = gt_rel.inverse().compose(est_rel)
        t_errors.append(np.linalg.norm(delta.translation))
        r_errors.append(rotation_angle(delta.rotation))
    return np.asarray(t_errors), np.asarray(r_errors)


def trajectory_report(estimated: list[Pose], ground_truth: list[Pose]) -> dict[str, float]:
    """Summary metrics for a trajectory comparison."""
    t_err, r_err = relative_pose_errors(estimated, ground_truth)
    return {
        "ate_rmse_m": ate_rmse(estimated, ground_truth),
        "rpe_trans_mean_m": float(t_err.mean()),
        "rpe_trans_p95_m": float(np.percentile(t_err, 95)),
        "rpe_rot_mean_rad": float(r_err.mean()),
        "final_position_error_m": float(
            np.linalg.norm(estimated[-1].translation - ground_truth[-1].translation)
        ),
    }
