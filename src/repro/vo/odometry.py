"""Trajectory integration from predicted frame-to-frame increments."""

from __future__ import annotations

import numpy as np

from repro.scene.se3 import Pose
from repro.vo.features import TargetScaler, target_to_pose


def increments_from_predictions(
    scaled_predictions: np.ndarray, scaler: TargetScaler
) -> list[Pose]:
    """Decode (N, 6) scaled network outputs into relative poses."""
    scaled_predictions = np.atleast_2d(np.asarray(scaled_predictions, dtype=float))
    raw = scaler.inverse(scaled_predictions)
    return [target_to_pose(row) for row in raw]


def integrate_increments(start: Pose, increments: list[Pose]) -> list[Pose]:
    """Chain relative poses into an absolute trajectory.

    Returns ``len(increments) + 1`` poses starting at ``start``; rotations
    are re-orthonormalised periodically to stop drift compounding on top of
    prediction error.
    """
    poses = [start]
    for index, increment in enumerate(increments):
        pose = poses[-1].compose(increment)
        if (index + 1) % 10 == 0:
            pose = pose.orthonormalized()
        poses.append(pose)
    return poses
