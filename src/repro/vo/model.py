"""VO network factories."""

from __future__ import annotations

import numpy as np

from repro.nn.dropout import Dropout
from repro.nn.layers import Dense, ReLU
from repro.nn.recurrent import LSTM
from repro.nn.sequential import Sequential


def build_vo_mlp(
    input_dim: int,
    rng: np.random.Generator,
    hidden: tuple[int, ...] = (256, 128),
    dropout_p: float = 0.5,
    output_dim: int = 6,
) -> Sequential:
    """The frame-pair VO regressor with MC-Dropout layers.

    Dropout (p = 0.5 per the paper) precedes every Dense layer after the
    first, matching the input/output neuron dropping the CIM macro
    implements with its CL/RL AND gates.

    Args:
        input_dim: feature width from :class:`~repro.vo.features.FrameEncoder`.
        rng: init generator.
        hidden: hidden layer widths.
        dropout_p: drop probability.
        output_dim: 6 for (translation, euler) targets.
    """
    if not hidden:
        raise ValueError("need at least one hidden layer")
    layers = [Dense(input_dim, hidden[0], rng, name="fc0"), ReLU()]
    previous = hidden[0]
    for index, width in enumerate(hidden[1:], start=1):
        layers.append(Dropout(dropout_p, rng=rng))
        layers.append(Dense(previous, width, rng, name=f"fc{index}"))
        layers.append(ReLU())
        previous = width
    layers.append(Dropout(dropout_p, rng=rng))
    layers.append(Dense(previous, output_dim, rng, name="head"))
    return Sequential(layers)


def build_vo_lstm(
    input_dim: int,
    rng: np.random.Generator,
    hidden_size: int = 64,
    dropout_p: float = 0.5,
    output_dim: int = 6,
) -> Sequential:
    """A PoseLSTM-flavoured sequence regressor.

    Consumes (batch, time, features) windows of frame-pair features and
    regresses the motion of the final step.  The Dense head carries the
    MC-Dropout layer.
    """
    return Sequential(
        [
            LSTM(input_dim, hidden_size, rng, return_sequence=False),
            Dropout(dropout_p, rng=rng),
            Dense(hidden_size, output_dim, rng, name="head"),
        ]
    )
