"""VO dataset assembly and training loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import MSELoss
from repro.nn.optim import Adam
from repro.nn.sequential import Sequential
from repro.scene.dataset import SyntheticRGBDScenes
from repro.vo.features import FrameEncoder, TargetScaler, pose_to_target


@dataclass
class VODataset:
    """Encoded frame-pair features and scaled 6-DoF targets.

    Attributes:
        features: (N, F) *standardised* inputs.
        targets: (N, 6) *scaled* targets.
        scaler: the target scaler (needed to decode predictions).
        feature_scaler: the input standardiser (apply to new frames).
        encoder: the frame encoder used.
        frame_pairs_per_scene: bookkeeping for sequence reconstruction.
    """

    features: np.ndarray
    targets: np.ndarray
    scaler: TargetScaler
    feature_scaler: TargetScaler
    encoder: FrameEncoder
    frame_pairs_per_scene: list[int] = field(default_factory=list)

    @staticmethod
    def from_scenes(
        dataset: SyntheticRGBDScenes,
        scene_indices: list[int],
        encoder: FrameEncoder | None = None,
        scaler: TargetScaler | None = None,
        feature_scaler: TargetScaler | None = None,
    ) -> "VODataset":
        """Build a dataset from rendered scene sequences.

        Args:
            dataset: the synthetic RGB-D dataset.
            scene_indices: scenes to include.
            encoder: frame encoder (default 9x12 depth grid).
            scaler: reuse an existing target scaler (e.g. the training
                scaler for a held-out set); fitted fresh when omitted.
            feature_scaler: reuse an existing feature standardiser.
        """
        encoder = encoder or FrameEncoder()
        features = []
        raw_targets = []
        pairs_per_scene = []
        for scene_index in scene_indices:
            pairs = dataset.frame_pairs(scene_index)
            pairs_per_scene.append(len(pairs))
            for previous, current, relative in pairs:
                features.append(encoder.encode_pair(previous.depth, current.depth))
                raw_targets.append(pose_to_target(relative))
        features = np.stack(features, axis=0)
        raw_targets = np.stack(raw_targets, axis=0)
        if scaler is None:
            scaler = TargetScaler.fit(raw_targets)
        if feature_scaler is None:
            # Clip at 6 sigma: bounds out-of-distribution (e.g. occluded)
            # frames to a range a fixed-point front end can represent.
            feature_scaler = TargetScaler.fit(features, clip=6.0)
        return VODataset(
            features=feature_scaler.transform(features),
            targets=scaler.transform(raw_targets),
            scaler=scaler,
            feature_scaler=feature_scaler,
            encoder=encoder,
            frame_pairs_per_scene=pairs_per_scene,
        )

    def __len__(self) -> int:
        return self.features.shape[0]


@dataclass
class TrainingHistory:
    """Per-epoch training/validation losses."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)


class VOTrainer:
    """Minibatch Adam training of a VO network.

    Args:
        model: the network (from :func:`~repro.vo.model.build_vo_mlp`).
        lr: Adam learning rate.
        batch_size: minibatch size.
        weight_decay: L2 regularisation.
    """

    def __init__(
        self,
        model: Sequential,
        lr: float = 1.0e-3,
        batch_size: int = 32,
        weight_decay: float = 1.0e-5,
    ):
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
        self.batch_size = int(batch_size)
        self.loss_fn = MSELoss()

    def fit(
        self,
        train: VODataset,
        epochs: int,
        rng: np.random.Generator,
        validation: VODataset | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over the data."""
        history = TrainingHistory()
        n = len(train)
        for epoch in range(epochs):
            self.model.train()
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                x, y = train.features[batch], train.targets[batch]
                predictions = self.model.forward(x)
                loss, grad = self.loss_fn(predictions, y)
                self.optimizer.zero_grad()
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += loss
                n_batches += 1
            history.train_loss.append(epoch_loss / max(n_batches, 1))
            if validation is not None:
                history.val_loss.append(self.evaluate(validation))
            if verbose:
                val = f" val={history.val_loss[-1]:.4f}" if validation else ""
                print(f"epoch {epoch + 1}/{epochs} train={history.train_loss[-1]:.4f}{val}")
        return history

    def evaluate(self, dataset: VODataset) -> float:
        """Mean validation loss with dropout off."""
        self.model.eval()
        predictions = self.model.forward(dataset.features)
        loss, _ = self.loss_fn(predictions, dataset.targets)
        return loss
