"""Deep visual odometry on synthetic RGB-D sequences (paper Sec. III).

A compact end-to-end stack: depth-frame pairs are encoded into feature
vectors, a dropout-equipped regression network predicts the 6-DoF frame-to-
frame motion, increments are chained into a trajectory, and ATE/RPE metrics
score it against ground truth.  The same trained network runs in three
modes: deterministic float, deterministic quantised, and MC-Dropout on the
CIM macro (via :mod:`repro.core.cim_mc_dropout`).
"""

from repro.vo.features import FrameEncoder, TargetScaler
from repro.vo.model import build_vo_mlp, build_vo_lstm
from repro.vo.trainer import VODataset, VOTrainer
from repro.vo.odometry import integrate_increments, increments_from_predictions
from repro.vo.evaluation import ate_rmse, relative_pose_errors, trajectory_report

__all__ = [
    "FrameEncoder",
    "TargetScaler",
    "build_vo_mlp",
    "build_vo_lstm",
    "VODataset",
    "VOTrainer",
    "integrate_increments",
    "increments_from_predictions",
    "ate_rmse",
    "relative_pose_errors",
    "trajectory_report",
]
