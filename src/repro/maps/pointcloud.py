"""Point-cloud container and utilities."""

from __future__ import annotations

import numpy as np

from repro.scene.camera import PinholeCamera
from repro.scene.se3 import Pose


class PointCloud:
    """An (N, 3) set of 3D points with simple geometry utilities."""

    def __init__(self, points: np.ndarray):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("point cloud is empty")
        self._points = points

    @property
    def points(self) -> np.ndarray:
        return self._points

    def __len__(self) -> int:
        return self._points.shape[0]

    @staticmethod
    def from_depth(depth: np.ndarray, camera: PinholeCamera, pose: Pose, stride: int = 1) -> "PointCloud":
        """Backproject a depth image into a world-frame cloud."""
        return PointCloud(camera.scan_to_world(depth, pose, stride=stride))

    def transformed(self, pose: Pose) -> "PointCloud":
        """The cloud moved by a rigid transform."""
        return PointCloud(pose.transform_points(self._points))

    def subsampled(self, n: int, rng: np.random.Generator) -> "PointCloud":
        """A uniformly subsampled copy with at most ``n`` points."""
        if n <= 0:
            raise ValueError("n must be positive")
        if n >= len(self):
            return PointCloud(self._points.copy())
        idx = rng.choice(len(self), size=n, replace=False)
        return PointCloud(self._points[idx])

    def bounds(self, padding: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned (lo, hi) bounds, optionally padded."""
        lo = self._points.min(axis=0) - padding
        hi = self._points.max(axis=0) + padding
        return lo, hi

    def centroid(self) -> np.ndarray:
        return self._points.mean(axis=0)

    def voxel_downsampled(self, voxel_size: float) -> "PointCloud":
        """One representative (mean) point per occupied voxel."""
        if voxel_size <= 0:
            raise ValueError("voxel_size must be positive")
        keys = np.floor(self._points / voxel_size).astype(np.int64)
        _, inverse, counts = np.unique(
            keys, axis=0, return_inverse=True, return_counts=True
        )
        sums = np.zeros((counts.size, 3))
        np.add.at(sums, inverse, self._points)
        return PointCloud(sums / counts[:, None])
