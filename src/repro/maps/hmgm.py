"""HMG mixture maps and the hardware co-design fit.

An :class:`HMGMixture` represents the flying domain's map with the kernels
the inverter array natively evaluates.  It can be obtained two ways,
mirroring the paper's workflow:

1. **Conversion** (:meth:`HMGMixture.from_gmm`): take a conventional GMM,
   snap each component's widths to the hardware width menu, then re-fit the
   mixture weights by non-negative least squares so the *field* (what the
   particle filter actually consumes) matches the GMM field.
2. **Direct fit** (:meth:`HMGMixture.fit`): EM-style fitting of the HMG
   mixture to the point cloud, with the same width quantisation absorbed
   inside the M-step.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import nnls
from scipy.special import logsumexp

from repro.maps.fitting import kmeans
from repro.maps.gmm import GaussianMixture
from repro.maps.hmg import HMG_UNIT_INTEGRALS, hmg_kernel, hmg_log_kernel


def _quantize_to_menu(values: np.ndarray, menu: np.ndarray | None) -> np.ndarray:
    """Snap (K, D) values to the nearest menu entry.

    ``menu`` may be a shared 1D menu of widths or a per-axis (D, W) menu
    (the hardware width codes map to different world-unit widths on each
    axis when the world-to-voltage scale is anisotropic).
    """
    if menu is None:
        return values
    menu = np.asarray(menu, dtype=float)
    if menu.ndim == 1:
        idx = np.argmin(np.abs(values[..., None] - menu), axis=-1)
        return menu[idx]
    if menu.ndim == 2:
        if menu.shape[0] != values.shape[1]:
            raise ValueError(
                f"per-axis menu has {menu.shape[0]} axes, values have {values.shape[1]}"
            )
        result = np.empty_like(values)
        for axis in range(values.shape[1]):
            idx = np.argmin(np.abs(values[:, axis, None] - menu[axis][None, :]), axis=1)
            result[:, axis] = menu[axis][idx]
        return result
    raise ValueError("menu must be 1D or 2D")


class HMGMixture:
    """A K-component HMG mixture map.

    Attributes:
        weights: (K,) mixture weights (sum to 1 when used as a density).
        means: (K, D) kernel centers.
        sigmas: (K, D) per-axis widths, typically snapped to the hardware
            width menu.
    """

    def __init__(self, weights: np.ndarray, means: np.ndarray, sigmas: np.ndarray):
        self.weights = np.asarray(weights, dtype=float).reshape(-1)
        self.means = np.atleast_2d(np.asarray(means, dtype=float))
        self.sigmas = np.atleast_2d(np.asarray(sigmas, dtype=float))
        k = self.weights.size
        if self.means.shape[0] != k or self.sigmas.shape != self.means.shape:
            raise ValueError("weights / means / sigmas shape mismatch")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        if self.weights.sum() <= 0:
            raise ValueError("weights must not all be zero")
        self.weights = self.weights / self.weights.sum()
        if np.any(self.sigmas <= 0):
            raise ValueError("sigmas must be positive")

    @property
    def n_components(self) -> int:
        return self.weights.size

    @property
    def n_dims(self) -> int:
        return self.means.shape[1]

    def _log_norms(self) -> np.ndarray:
        """Per-component log normalisation constants of the kernels."""
        c_unit = HMG_UNIT_INTEGRALS[self.n_dims]
        return np.log(c_unit) + np.log(self.sigmas).sum(axis=1)

    def kernel_values(self, points: np.ndarray) -> np.ndarray:
        """(N, K) peak-normalised kernel values (the array's column currents
        up to the per-column peak current)."""
        return hmg_kernel(points, self.means, self.sigmas)

    def field(self, points: np.ndarray) -> np.ndarray:
        """(N,) weighted kernel field sum_j w_j f_j (unnormalised)."""
        return self.kernel_values(points) @ self.weights

    def logpdf(self, points: np.ndarray) -> np.ndarray:
        """(N,) log-density of the properly normalised mixture."""
        log_k = hmg_log_kernel(points, self.means, self.sigmas)
        log_w = np.log(self.weights + 1e-300) - self._log_norms()
        return logsumexp(log_k + log_w[None, :], axis=1)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """(N,) density of the normalised mixture."""
        return np.exp(self.logpdf(points))

    def amplitudes(self) -> np.ndarray:
        """(K,) density amplitude of each component at its own center.

        The inverter array realises the field ``sum_j a_j f_j``; matching
        these amplitudes (rather than raw weights) is what column
        replication must reproduce.
        """
        return self.weights * np.exp(-self._log_norms())

    def mean_loglik(self, points: np.ndarray) -> float:
        """Mean log-likelihood of points under the normalised mixture."""
        return float(self.logpdf(points).mean())

    @staticmethod
    def from_gmm(
        gmm: GaussianMixture,
        sigma_menu: np.ndarray | None = None,
        refine_points: np.ndarray | None = None,
    ) -> "HMGMixture":
        """Co-design conversion of a GMM into a hardware HMG mixture.

        Args:
            gmm: the conventional map model.
            sigma_menu: per-axis widths the hardware can realise (world
                units).  ``None`` keeps the GMM widths (ideal kernels).
            refine_points: if given, mixture weights are re-fit by
                non-negative least squares so that the HMG *density* matches
                the GMM density on these points (compensates both the kernel
                shape change and the width quantisation).

        Returns:
            The co-designed HMG mixture.
        """
        sigmas = _quantize_to_menu(gmm.sigmas.copy(), sigma_menu)
        model = HMGMixture(gmm.weights.copy(), gmm.means.copy(), sigmas)
        if refine_points is not None:
            model = model.with_refined_weights(refine_points, gmm.pdf(refine_points))
        return model

    def with_refined_weights(
        self, points: np.ndarray, target_density: np.ndarray
    ) -> "HMGMixture":
        """Re-fit weights by NNLS so the mixture density matches a target.

        Solves ``min_w || Phi w - t ||`` with ``w >= 0`` where ``Phi`` holds
        per-component normalised densities at ``points``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        target = np.asarray(target_density, dtype=float).reshape(-1)
        if target.size != points.shape[0]:
            raise ValueError("points / target_density length mismatch")
        phi = self.kernel_values(points) * np.exp(-self._log_norms())[None, :]
        weights, _ = nnls(phi, target)
        if weights.sum() <= 0:
            # Degenerate target; keep previous weights.
            return self
        # Drop zero-weight components (they would waste array columns).
        keep = weights > 1e-12 * weights.max()
        return HMGMixture(weights[keep], self.means[keep], self.sigmas[keep])

    @staticmethod
    def fit(
        points: np.ndarray,
        n_components: int,
        rng: np.random.Generator,
        sigma_menu: np.ndarray | None = None,
        max_iters: int = 40,
        tol: float = 1e-5,
        min_sigma: float = 1e-3,
    ) -> "HMGMixture":
        """EM-style direct fit of an HMG mixture to a point cloud.

        The E-step uses exact HMG responsibilities; the M-step updates
        means/widths from responsibility-weighted moments (the HMG kernel's
        per-axis second moment is close enough to Gaussian for this to
        converge in practice) and snaps widths to the hardware menu.
        """
        points = np.asarray(points, dtype=float)
        n = points.shape[0]
        if not 1 <= n_components <= n:
            raise ValueError("n_components must be in [1, n_points]")
        centers, labels = kmeans(points, n_components, rng)
        sigmas = np.empty_like(centers)
        weights = np.empty(n_components)
        for j in range(n_components):
            mask = labels == j
            weights[j] = max(mask.sum(), 1)
            if mask.sum() > 1:
                sigmas[j] = np.maximum(points[mask].std(axis=0), min_sigma)
            else:
                sigmas[j] = np.maximum(points.std(axis=0) / n_components, min_sigma)
        sigmas = _quantize_to_menu(sigmas, sigma_menu)
        model = HMGMixture(weights, centers, sigmas)

        previous = -np.inf
        for _ in range(max_iters):
            log_k = hmg_log_kernel(points, model.means, model.sigmas)
            log_w = np.log(model.weights + 1e-300) - model._log_norms()
            log_joint = log_k + log_w[None, :]
            log_norm = logsumexp(log_joint, axis=1, keepdims=True)
            mean_ll = float(log_norm.mean())
            resp = np.exp(log_joint - log_norm)
            mass = resp.sum(axis=0) + 1e-12
            weights = mass / n
            means = (resp.T @ points) / mass[:, None]
            sq = (
                resp.T @ (points**2)
                - 2.0 * means * (resp.T @ points)
                + mass[:, None] * means**2
            )
            sigmas = np.sqrt(np.maximum(sq / mass[:, None], min_sigma**2))
            sigmas = _quantize_to_menu(sigmas, sigma_menu)
            model = HMGMixture(weights, means, sigmas)
            if mean_ll - previous < tol:
                break
            previous = mean_ll
        return model

    def field_rmse(self, other_pdf: np.ndarray, points: np.ndarray) -> float:
        """RMSE between this mixture's density and a reference density."""
        mine = self.pdf(points)
        other = np.asarray(other_pdf, dtype=float).reshape(-1)
        return float(np.sqrt(np.mean((mine - other) ** 2)))
