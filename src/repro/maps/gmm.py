"""Gaussian Mixture Model with diagonal covariance, fit by EM.

This is the conventional map representation the paper's co-design competes
against (Reynolds-style GMM over Kinect point clouds), and also the seed
model from which the hardware-native HMG mixture is derived.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from repro.maps.fitting import kmeans
from repro.maps.gaussian import diag_gaussian_logpdf


class GaussianMixture:
    """A K-component diagonal-covariance Gaussian mixture in D dimensions.

    Attributes:
        weights: (K,) mixture weights summing to 1.
        means: (K, D) component means.
        sigmas: (K, D) per-axis standard deviations.
    """

    def __init__(self, weights: np.ndarray, means: np.ndarray, sigmas: np.ndarray):
        self.weights = np.asarray(weights, dtype=float).reshape(-1)
        self.means = np.atleast_2d(np.asarray(means, dtype=float))
        self.sigmas = np.atleast_2d(np.asarray(sigmas, dtype=float))
        k = self.weights.size
        if self.means.shape[0] != k or self.sigmas.shape[0] != k:
            raise ValueError("weights / means / sigmas size mismatch")
        if self.means.shape != self.sigmas.shape:
            raise ValueError("means and sigmas must share a shape")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        total = self.weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.weights = self.weights / total
        if np.any(self.sigmas <= 0):
            raise ValueError("sigmas must be positive")

    @property
    def n_components(self) -> int:
        return self.weights.size

    @property
    def n_dims(self) -> int:
        return self.means.shape[1]

    def component_logpdf(self, points: np.ndarray) -> np.ndarray:
        """(N, K) per-component log-densities."""
        return diag_gaussian_logpdf(points, self.means, self.sigmas)

    def logpdf(self, points: np.ndarray) -> np.ndarray:
        """(N,) mixture log-density."""
        log_comp = self.component_logpdf(points) + np.log(self.weights)[None, :]
        return logsumexp(log_comp, axis=1)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """(N,) mixture density."""
        return np.exp(self.logpdf(points))

    def responsibilities(self, points: np.ndarray) -> np.ndarray:
        """(N, K) posterior component responsibilities."""
        log_comp = self.component_logpdf(points) + np.log(self.weights)[None, :]
        log_norm = logsumexp(log_comp, axis=1, keepdims=True)
        return np.exp(log_comp - log_norm)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw n points from the mixture."""
        counts = rng.multinomial(n, self.weights)
        parts = []
        for j, count in enumerate(counts):
            if count == 0:
                continue
            parts.append(
                self.means[j] + rng.normal(size=(count, self.n_dims)) * self.sigmas[j]
            )
        samples = np.concatenate(parts, axis=0)
        return samples[rng.permutation(n)]

    @staticmethod
    def fit(
        points: np.ndarray,
        n_components: int,
        rng: np.random.Generator,
        max_iters: int = 100,
        tol: float = 1e-5,
        min_sigma: float = 1e-3,
    ) -> "GaussianMixture":
        """Fit by expectation-maximisation with k-means++ initialisation.

        Args:
            points: (N, D) training points.
            n_components: K.
            rng: random generator (init only; EM itself is deterministic).
            max_iters: EM iteration cap.
            tol: stop when mean log-likelihood improves less than this.
            min_sigma: floor on per-axis sigmas (regularisation).

        Returns:
            The fitted mixture.
        """
        points = np.asarray(points, dtype=float)
        n = points.shape[0]
        if n_components < 1 or n_components > n:
            raise ValueError("n_components must be in [1, n_points]")
        centers, labels = kmeans(points, n_components, rng)
        means = centers
        sigmas = np.empty_like(means)
        weights = np.empty(n_components)
        for j in range(n_components):
            mask = labels == j
            weights[j] = max(mask.sum(), 1) / n
            if mask.sum() > 1:
                sigmas[j] = np.maximum(points[mask].std(axis=0), min_sigma)
            else:
                sigmas[j] = np.maximum(points.std(axis=0) / n_components, min_sigma)
        weights = weights / weights.sum()
        model = GaussianMixture(weights, means, sigmas)

        previous = -np.inf
        for _ in range(max_iters):
            # E-step in the log domain.
            log_comp = model.component_logpdf(points) + np.log(model.weights)[None, :]
            log_norm = logsumexp(log_comp, axis=1, keepdims=True)
            mean_ll = float(log_norm.mean())
            resp = np.exp(log_comp - log_norm)
            # M-step.
            mass = resp.sum(axis=0) + 1e-12
            weights = mass / n
            means = (resp.T @ points) / mass[:, None]
            sq = (
                resp.T @ (points**2) - 2.0 * means * (resp.T @ points) + mass[:, None] * means**2
            )
            sigmas = np.sqrt(np.maximum(sq / mass[:, None], min_sigma**2))
            model = GaussianMixture(weights, means, sigmas)
            if mean_ll - previous < tol:
                break
            previous = mean_ll
        return model

    def mean_loglik(self, points: np.ndarray) -> float:
        """Mean log-likelihood of a point set (model-selection metric)."""
        return float(self.logpdf(points).mean())
