"""Map models: point clouds, Gaussian mixtures, and hardware-native HMG mixtures.

The flying domain's 3D map is learned from scanner point clouds.  The
conventional representation is a Gaussian Mixture Model (GMM) evaluated
digitally; the paper's co-design re-fits the map with Harmonic-Mean-of-
Gaussian (HMG) kernels -- the native transfer function of the likelihood
inverter -- with centers, widths and weights quantised to what the hardware
can actually program.
"""

from repro.maps.pointcloud import PointCloud
from repro.maps.gaussian import (
    diag_gaussian_logpdf,
    diag_gaussian_pdf,
)
from repro.maps.fitting import kmeans, kmeans_plus_plus_init
from repro.maps.gmm import GaussianMixture
from repro.maps.hmg import (
    HMG_UNIT_INTEGRAL_3D,
    hmg_kernel,
    hmg_unit_integral,
)
from repro.maps.hmgm import HMGMixture

__all__ = [
    "PointCloud",
    "diag_gaussian_logpdf",
    "diag_gaussian_pdf",
    "kmeans",
    "kmeans_plus_plus_init",
    "GaussianMixture",
    "hmg_kernel",
    "hmg_unit_integral",
    "HMG_UNIT_INTEGRAL_3D",
    "HMGMixture",
]
