"""Shared mixture-fitting machinery: k-means++ initialisation and k-means."""

from __future__ import annotations

import numpy as np


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling.

    Args:
        points: (N, D) data.
        k: number of centers (1 <= k <= N).
        rng: random generator.

    Returns:
        (k, D) initial centers.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} must be in [1, {n}]")
    centers = np.empty((k, points.shape[1]))
    centers[0] = points[rng.integers(n)]
    closest_sq = np.full(n, np.inf)
    for j in range(1, k):
        dist_sq = np.sum((points - centers[j - 1]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with chosen centers; reuse a random point.
            centers[j] = points[rng.integers(n)]
            continue
        centers[j] = points[rng.choice(n, p=closest_sq / total)]
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iters: int = 50,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ seeding.

    Args:
        points: (N, D) data.
        k: number of clusters.
        rng: random generator.
        max_iters: Lloyd iteration cap.
        tol: stop when centers move less than this (max norm).

    Returns:
        (centers, labels): (k, D) centers and (N,) hard assignments.
    """
    points = np.asarray(points, dtype=float)
    centers = kmeans_plus_plus_init(points, k, rng)
    labels = np.zeros(points.shape[0], dtype=np.int64)
    for _ in range(max_iters):
        dist_sq = np.sum((points[:, None, :] - centers[None, :, :]) ** 2, axis=2)
        labels = np.argmin(dist_sq, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            mask = labels == j
            if mask.any():
                new_centers[j] = points[mask].mean(axis=0)
            else:
                # Re-seed an empty cluster at the worst-fit point.
                new_centers[j] = points[np.argmax(dist_sq.min(axis=1))]
        shift = np.abs(new_centers - centers).max()
        centers = new_centers
        if shift < tol:
            break
    return centers, labels
