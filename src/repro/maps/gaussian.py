"""Diagonal-covariance Gaussian density helpers (vectorised, log-domain)."""

from __future__ import annotations

import numpy as np

_LOG_2PI = np.log(2.0 * np.pi)


def diag_gaussian_logpdf(
    points: np.ndarray, means: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Log-density of points under K diagonal Gaussians.

    Args:
        points: (N, D) query points.
        means: (K, D) component means.
        sigmas: (K, D) per-axis standard deviations (must be positive).

    Returns:
        (N, K) matrix of log-densities.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    means = np.atleast_2d(np.asarray(means, dtype=float))
    sigmas = np.atleast_2d(np.asarray(sigmas, dtype=float))
    if np.any(sigmas <= 0):
        raise ValueError("sigmas must be positive")
    d = points.shape[1]
    z = (points[:, None, :] - means[None, :, :]) / sigmas[None, :, :]
    log_norm = -0.5 * d * _LOG_2PI - np.log(sigmas).sum(axis=1)
    return log_norm[None, :] - 0.5 * np.sum(z**2, axis=2)


def diag_gaussian_pdf(
    points: np.ndarray, means: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Density version of :func:`diag_gaussian_logpdf`, shape (N, K)."""
    return np.exp(diag_gaussian_logpdf(points, means, sigmas))
