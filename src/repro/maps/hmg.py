"""The Harmonic-Mean-of-Gaussian (HMG) kernel.

The series-stacked likelihood inverter combines per-axis Gaussian-like
current bells as a harmonic mean (paper Sec. II-B)::

    f(x) = D / sum_k exp(z_k^2 / 2),      z_k = (x_k - mu_k) / sigma_k

(peak-normalised to 1 at the center).  Unlike a product-of-Gaussians, whose
iso-contours are ellipses, the HMG kernel's contours have *rectilinear*
tails: far from the center along one axis the kernel is dominated by that
single axis term, so contours flatten against axis-aligned lines
(paper Fig. 2c/d).

The kernel is not separable, so its normalisation constant is not
``(2*pi)**(D/2)``; :data:`HMG_UNIT_INTEGRALS` tabulates the numerically
integrated unit-kernel volume used to turn kernels into proper densities.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

# Integral of the unit (sigma = 1, peak-normalised) HMG kernel over R^D.
# D=1 reduces to a Gaussian (sqrt(2*pi)); higher D carry extra tail mass.
# Values computed by high-resolution trapezoidal quadrature (see
# tests/maps/test_hmg.py which re-derives them to 4 decimal places).
HMG_UNIT_INTEGRALS: dict[int, float] = {
    1: 2.5066282746,
    2: 10.202996,
    3: 48.735963,
}
HMG_UNIT_INTEGRAL_3D: float = HMG_UNIT_INTEGRALS[3]

_EXP_CLIP = 700.0


def hmg_log_kernel(
    points: np.ndarray, means: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Log of the peak-normalised HMG kernel for K components.

    Args:
        points: (N, D) query points.
        means: (K, D) kernel centers.
        sigmas: (K, D) per-axis widths (positive).

    Returns:
        (N, K) log-kernel values (0 at a center, negative elsewhere).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    means = np.atleast_2d(np.asarray(means, dtype=float))
    sigmas = np.atleast_2d(np.asarray(sigmas, dtype=float))
    if np.any(sigmas <= 0):
        raise ValueError("sigmas must be positive")
    d = points.shape[1]
    z = (points[:, None, :] - means[None, :, :]) / sigmas[None, :, :]
    # log f = log D - logsumexp_k(z_k^2 / 2): stable for arbitrarily far
    # points; clamped at 0 so rounding never pushes the kernel above 1.
    return np.minimum(np.log(d) - logsumexp(0.5 * z**2, axis=2), 0.0)


def hmg_kernel(points: np.ndarray, means: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
    """Peak-normalised HMG kernel values, shape (N, K)."""
    return np.exp(np.maximum(hmg_log_kernel(points, means, sigmas), -_EXP_CLIP))


def hmg_unit_integral(d: int, n_grid: int = 241, limit: float = 12.0) -> float:
    """Numerically integrate the unit HMG kernel over R^d (d in {1, 2, 3}).

    Used to validate :data:`HMG_UNIT_INTEGRALS`; quadratic cost in
    ``n_grid`` for d=2 and cubic for d=3.
    """
    u = np.linspace(-limit, limit, n_grid)
    if d == 1:
        f = np.exp(-np.minimum(u**2 / 2.0, _EXP_CLIP))
        return float(np.trapezoid(f, u))
    if d == 2:
        u1, u2 = np.meshgrid(u, u, indexing="ij")
        e = np.exp(np.minimum(u1**2 / 2, _EXP_CLIP)) + np.exp(
            np.minimum(u2**2 / 2, _EXP_CLIP)
        )
        return float(np.trapezoid(np.trapezoid(2.0 / e, u, axis=1), u))
    if d == 3:
        u1, u2 = np.meshgrid(u, u, indexing="ij")
        e12 = np.exp(np.minimum(u1**2 / 2, _EXP_CLIP)) + np.exp(
            np.minimum(u2**2 / 2, _EXP_CLIP)
        )
        slices = np.empty(n_grid)
        for i, u3 in enumerate(u):
            f = 3.0 / (e12 + np.exp(min(u3**2 / 2, _EXP_CLIP)))
            slices[i] = np.trapezoid(np.trapezoid(f, u, axis=1), u)
        return float(np.trapezoid(slices, u))
    raise ValueError(f"unsupported dimension {d}")


def tail_rectilinearity(
    sigma: float = 1.0, level: float = 1e-3, n_grid: int = 801, limit: float = 6.0
) -> tuple[float, float]:
    """Quantify the tail shape of 2D iso-contours (paper Fig. 2c/d).

    For a contour at ``level`` (relative to peak), returns the ratio of the
    contour's area to the area of the axis-aligned bounding box of the
    contour, for (hmg, gaussian).  A square-ish (rectilinear) contour has a
    ratio near 1; an ellipse has pi/4 ~ 0.785.  The HMG ratio exceeds the
    Gaussian ratio, which is the quantitative version of "rectilinear vs
    elliptical tails".
    """
    u = np.linspace(-limit, limit, n_grid)
    u1, u2 = np.meshgrid(u, u, indexing="ij")
    z1, z2 = u1 / sigma, u2 / sigma
    hmg = 2.0 / (
        np.exp(np.minimum(z1**2 / 2, _EXP_CLIP)) + np.exp(np.minimum(z2**2 / 2, _EXP_CLIP))
    )
    gauss = np.exp(-np.minimum((z1**2 + z2**2) / 2, _EXP_CLIP))
    cell = (u[1] - u[0]) ** 2
    ratios = []
    for field in (hmg, gauss):
        inside = field >= level
        area = inside.sum() * cell
        rows = np.any(inside, axis=1)
        cols = np.any(inside, axis=0)
        extent1 = u[rows].max() - u[rows].min()
        extent2 = u[cols].max() - u[cols].min()
        ratios.append(area / (extent1 * extent2))
    return float(ratios[0]), float(ratios[1])
