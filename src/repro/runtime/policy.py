"""Shared batching / queueing policy types.

The same throughput-vs-latency trade-off shows up at every batching
layer of the stack -- the CIM macro amortises peripherals over column
reads, ``session.run_batch`` amortises mask drawing over items, and the
serving layer (:mod:`repro.serve`) amortises both over concurrent
requests.  These small frozen dataclasses give every layer one vocabulary
for the knobs instead of loose ``max_batch=...`` ints.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BatchPolicy:
    """How aggressively to coalesce work into micro-batches.

    Attributes:
        max_batch: largest micro-batch assembled before dispatch; 1
            disables coalescing (every item dispatches alone).
        max_wait_ms: longest an admitted item waits for company before
            its (possibly undersized) batch dispatches anyway.  0 means
            dispatch whatever is immediately available.
    """

    max_batch: int = 8
    max_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0


@dataclass(frozen=True)
class QueuePolicy:
    """Bounded admission: how much pending work a consumer may hold.

    Attributes:
        max_pending: admitted-but-unfinished items allowed at once;
            admission beyond this is an explicit rejection
            (:class:`repro.serve.ServiceOverloaded`), never unbounded
            queue growth.
    """

    max_pending: int = 64

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )


__all__ = ["BatchPolicy", "QueuePolicy"]
