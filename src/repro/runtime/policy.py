"""Shared batching / queueing policy types.

The same throughput-vs-latency trade-off shows up at every batching
layer of the stack -- the CIM macro amortises peripherals over column
reads, ``session.run_batch`` amortises mask drawing over items, and the
serving layer (:mod:`repro.serve`) amortises both over concurrent
requests.  These small frozen dataclasses give every layer one vocabulary
for the knobs instead of loose ``max_batch=...`` ints.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BatchPolicy:
    """How aggressively to coalesce work into micro-batches.

    Attributes:
        max_batch: largest micro-batch assembled before dispatch; 1
            disables coalescing (every item dispatches alone).
        max_wait_ms: longest an admitted item waits for company before
            its (possibly undersized) batch dispatches anyway.  0 means
            dispatch whatever is immediately available.
    """

    max_batch: int = 8
    max_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0


@dataclass(frozen=True)
class QueuePolicy:
    """Bounded admission: how much pending work a consumer may hold.

    Attributes:
        max_pending: admitted-but-unfinished items allowed at once;
            admission beyond this is an explicit rejection
            (:class:`repro.serve.ServiceOverloaded`), never unbounded
            queue growth.
    """

    max_pending: int = 64

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )


@dataclass(frozen=True)
class ShardPolicy:
    """Horizontal scale-out: how work fans out over worker processes.

    The serving layer (:mod:`repro.serve.workers`) spawns ``workers``
    shard processes, each owning its own calibrated session pools, and
    routes every assembled micro-batch to the least-loaded live shard.

    Attributes:
        workers: shard process count; 0 (default) keeps execution
            in-process (the single-process coalescing path).
        affinity: prefer, among equally loaded shards, one that has
            already served the batch's substrate, so per-substrate
            calibration/cache state stays warm instead of ping-ponging.
        respawn: replace a dead shard with a fresh spawn (in-flight
            requests on the dead shard are failed with a retryable 503
            either way).
        join_timeout_s: shutdown deadline -- shards that have not exited
            by then are terminated, then killed, so no worker process
            can outlive the service.
        spawn_timeout_s: how long dispatch waits for a live, warmed
            shard (covers initial warm-up and post-crash respawn) before
            rejecting with a retryable 503.
    """

    workers: int = 0
    affinity: bool = True
    respawn: bool = True
    join_timeout_s: float = 5.0
    spawn_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.join_timeout_s <= 0:
            raise ValueError(
                f"join_timeout_s must be > 0, got {self.join_timeout_s}"
            )
        if self.spawn_timeout_s <= 0:
            raise ValueError(
                f"spawn_timeout_s must be > 0, got {self.spawn_timeout_s}"
            )


@dataclass(frozen=True)
class TrackPolicy:
    """Lifecycle bounds for stateful streaming tracks (:mod:`repro.serve.tracks`).

    A live track holds filter state on its home shard plus a replay
    buffer of acked measurements in the manager, so both the track count
    and the per-track memory must be bounded explicitly.

    Attributes:
        max_tracks: live tracks admitted at once; ``/track/open`` beyond
            this is an explicit retryable rejection
            (:class:`repro.serve.ServiceOverloaded`), never unbounded
            state growth.
        idle_ttl_s: a track idle (no step/close) for longer than this is
            evicted by the sweep; its next step gets a clear
            "track expired" error instead of serving stale state.
        sweep_interval_s: how often the eviction sweep runs.
        replay_log_steps: acked measurements buffered per track for
            crash replay; 0 disables replay entirely (shard death then
            re-initializes the filter and flags ``state_lost``).
        max_track_bytes: byte bound on one track's replay buffer
            (controls + depth frames).  A track that outgrows it drops
            the buffer and falls back to ``state_lost`` recovery -- the
            track stays live, only its crash-replay ability is shed.
    """

    max_tracks: int = 1024
    idle_ttl_s: float = 600.0
    sweep_interval_s: float = 5.0
    replay_log_steps: int = 256
    max_track_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.max_tracks < 1:
            raise ValueError(
                f"max_tracks must be >= 1, got {self.max_tracks}"
            )
        if self.idle_ttl_s <= 0:
            raise ValueError(
                f"idle_ttl_s must be > 0, got {self.idle_ttl_s}"
            )
        if self.sweep_interval_s <= 0:
            raise ValueError(
                f"sweep_interval_s must be > 0, got {self.sweep_interval_s}"
            )
        if self.replay_log_steps < 0:
            raise ValueError(
                f"replay_log_steps must be >= 0, got {self.replay_log_steps}"
            )
        if self.max_track_bytes < 0:
            raise ValueError(
                f"max_track_bytes must be >= 0, got {self.max_track_bytes}"
            )


__all__ = ["BatchPolicy", "QueuePolicy", "ShardPolicy", "TrackPolicy"]
