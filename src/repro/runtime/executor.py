"""Plan execution: serial or across a process pool, failure-isolated.

The executor turns a :class:`~repro.runtime.plan.Plan` into an
:class:`ExecutionReport` -- one :class:`JobRecord` per job, in plan
order.  Three properties the sweep workloads rely on:

1. **Determinism.**  Every job's seed is explicit in its spec and jobs
   share no mutable state, so ``workers=4`` produces metrics identical
   to the serial path (the parallel/serial equivalence is tested).
2. **Failure isolation.**  A job that raises records an error row (with
   the full traceback) instead of aborting the grid; the remaining cells
   still run to completion.
3. **Streaming persistence.**  With a :class:`~repro.runtime.store.RunStore`
   attached, each record is appended to ``results.jsonl`` the moment the
   job finishes, so a killed sweep keeps everything it already computed.

Worker processes exchange only JSON-safe payloads (job dicts in,
``ExperimentResult.to_dict()`` out), which keeps the pool agnostic to
the start method -- fork, spawn and forkserver all behave identically.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable

from repro.api.results import ExperimentResult
from repro.runtime.plan import JobSpec, Plan


def run_job_payload(payload: dict) -> dict:
    """Execute one job described by a JSON-safe payload dict.

    Module-level (picklable) so process pools can ship it to workers;
    the serial path calls it directly, guaranteeing both paths execute
    byte-identical code.  Never raises: failures come back as error
    records carrying the formatted traceback.
    """
    from repro.api.registry import run_experiment

    start = time.perf_counter()
    try:
        result = run_experiment(
            payload["experiment_id"],
            seed=payload["seed"],
            substrate=payload["substrate"],
            overrides=payload["overrides"] or None,
        )
        return {
            "status": "ok",
            "result": result.to_dict(),
            "error": None,
            "duration_s": time.perf_counter() - start,
        }
    except Exception:
        return {
            "status": "error",
            "result": None,
            "error": traceback.format_exc(),
            "duration_s": time.perf_counter() - start,
        }


@dataclass
class JobRecord:
    """Outcome of one executed job.

    Attributes:
        job: the spec that was executed.
        status: ``"ok"`` or ``"error"``.
        result: the structured result for ok jobs, else None.
        error: formatted traceback for failed jobs, else None.
        duration_s: job wall-clock time inside the worker.
    """

    job: JobSpec
    status: str
    result: ExperimentResult | None = None
    error: str | None = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_jsonable(self) -> dict:
        payload = self.job.to_jsonable()
        payload.update(
            {
                "status": self.status,
                "duration_s": self.duration_s,
                "error": self.error,
                "result": None if self.result is None else self.result.to_dict(),
            }
        )
        return payload

    @classmethod
    def from_jsonable(cls, payload: dict) -> "JobRecord":
        job = JobSpec(
            index=int(payload.get("index", 0)),
            experiment_id=payload["experiment_id"],
            substrate=payload.get("substrate"),
            seed=int(payload.get("seed") or 0),
            overrides=dict(payload.get("overrides") or {}),
        )
        result = payload.get("result")
        return cls(
            job=job,
            status=payload.get("status", "error"),
            result=None if result is None else ExperimentResult.from_dict(result),
            error=payload.get("error"),
            duration_s=float(payload.get("duration_s", 0.0)),
        )


@dataclass
class ExecutionReport:
    """All job records of one plan execution, in plan order."""

    records: list[JobRecord]
    wall_time_s: float = 0.0
    workers: int = 1

    @property
    def results(self) -> list[ExperimentResult]:
        """Successful results, in plan order."""
        return [
            record.result
            for record in self.records
            if record.ok and record.result is not None
        ]

    @property
    def errors(self) -> list[JobRecord]:
        return [record for record in self.records if not record.ok]

    @property
    def n_ok(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def n_failed(self) -> int:
        return len(self.records) - self.n_ok

    def raise_on_error(self) -> None:
        """Re-raise the first failure (with its worker traceback)."""
        for record in self.records:
            if not record.ok:
                raise RuntimeError(
                    f"job {record.job.job_id} failed:\n{record.error}"
                )

    def summary(self) -> dict:
        return {
            "n_jobs": len(self.records),
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "wall_time_s": self.wall_time_s,
            "workers": self.workers,
            "job_time_s": sum(record.duration_s for record in self.records),
        }


class ParallelExecutor:
    """Runs a plan's jobs, optionally across a process pool.

    Args:
        workers: process count.  ``1`` (default) executes in-process --
            same code path as the workers, minus the pool.
        start_method: multiprocessing start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``); None uses the platform
            default.
    """

    def __init__(self, workers: int = 1, start_method: str | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.start_method = start_method

    def execute(
        self,
        plan: Plan,
        store: Any | None = None,
        progress: Callable[[JobRecord], None] | None = None,
    ) -> ExecutionReport:
        """Execute every job; one record per job, failures captured.

        Args:
            plan: the compiled plan.
            store: optional :class:`~repro.runtime.store.RunStore` (or a
                path for one) -- records stream into it as jobs finish
                and the manifest is finalised at the end.
            progress: callback invoked with each finished record.

        Returns:
            The execution report, records in plan order.
        """
        if store is not None:
            from repro.runtime.store import RunStore

            if not isinstance(store, RunStore):
                store = RunStore.create(store, plan=plan)
        start = time.perf_counter()
        records: dict[int, JobRecord] = {}

        def finish(job: JobSpec, payload: dict) -> None:
            record = JobRecord(
                job=job,
                status=payload["status"],
                result=(
                    None
                    if payload["result"] is None
                    else ExperimentResult.from_dict(payload["result"])
                ),
                error=payload["error"],
                duration_s=payload["duration_s"],
            )
            records[job.index] = record
            if store is not None:
                store.append(record)
            if progress is not None:
                progress(record)

        if self.workers == 1 or len(plan) == 1:
            for job in plan:
                finish(job, run_job_payload(job.to_jsonable()))
        else:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            )
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(plan)), mp_context=context
            ) as pool:
                pending = {
                    pool.submit(run_job_payload, job.to_jsonable()): job
                    for job in plan
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        job = pending.pop(future)
                        try:
                            finish(job, future.result())
                        except Exception:  # worker died (not a job error)
                            finish(
                                job,
                                {
                                    "status": "error",
                                    "result": None,
                                    "error": traceback.format_exc(),
                                    "duration_s": 0.0,
                                },
                            )
        report = ExecutionReport(
            records=[records[index] for index in sorted(records)],
            wall_time_s=time.perf_counter() - start,
            workers=self.workers,
        )
        if store is not None:
            store.finalize(report)
        return report


def run_plan(
    plan: Plan,
    workers: int = 1,
    store: Any | None = None,
    start_method: str | None = None,
) -> ExecutionReport:
    """Convenience wrapper: execute ``plan`` with a fresh executor."""
    return ParallelExecutor(workers=workers, start_method=start_method).execute(
        plan, store=store
    )


__all__ = [
    "ExecutionReport",
    "JobRecord",
    "ParallelExecutor",
    "run_job_payload",
    "run_plan",
]
