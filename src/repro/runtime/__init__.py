"""Batch-first execution runtime for the reproduction stack.

The paper's evidence is grids -- experiment x substrate x seed x config
-- and this package is the layer that runs grids as *first-class work*
instead of hidden for-loops:

- :mod:`repro.runtime.plan` -- :class:`Plan` / :class:`JobSpec`: compile
  a sweep grid into an explicit, validated, inspectable job list.
- :mod:`repro.runtime.executor` -- :class:`ParallelExecutor`: run a plan
  serially or across a process pool with per-job failure capture;
  parallel and serial execution are bit-identical because every job's
  seed lives in its spec.
- :mod:`repro.runtime.store` -- :class:`RunStore`: a structured run
  directory (``manifest.json`` + ``results.jsonl``) with load/query
  helpers, streamed to as jobs finish.
- :mod:`repro.runtime.policy` -- :class:`BatchPolicy` /
  :class:`QueuePolicy` / :class:`ShardPolicy` / :class:`TrackPolicy`:
  the shared coalescing / bounded-admission / scale-out / track-
  lifecycle knob vocabulary used by every batching layer (notably
  :mod:`repro.serve`).

Batched *inference* (``session.run_batch``) lives with the sessions in
:mod:`repro.api.substrates`; this package covers batched *experiments*.

Quick start::

    from repro.runtime import Plan, ParallelExecutor, RunStore

    plan = Plan.compile("E3", substrates=["digital", "cim"], seeds=[0, 1])
    store = RunStore.create("runs/demo", plan=plan)
    report = ParallelExecutor(workers=4).execute(plan, store=store)
    report.raise_on_error()

    RunStore.load("runs/demo").query(substrate="cim")
"""

from repro.runtime.executor import (
    ExecutionReport,
    JobRecord,
    ParallelExecutor,
    run_plan,
)
from repro.runtime.plan import JobSpec, Plan
from repro.runtime.policy import (
    BatchPolicy,
    QueuePolicy,
    ShardPolicy,
    TrackPolicy,
)
from repro.runtime.store import RunStore

__all__ = [
    "BatchPolicy",
    "ExecutionReport",
    "JobRecord",
    "JobSpec",
    "ParallelExecutor",
    "Plan",
    "QueuePolicy",
    "RunStore",
    "ShardPolicy",
    "TrackPolicy",
    "run_plan",
]
