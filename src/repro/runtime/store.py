"""Structured on-disk run store: ``manifest.json`` + ``results.jsonl``.

A run directory replaces the flat one-file-per-result ``--out`` scheme
with something a fleet of sweeps can be queried through:

- ``manifest.json`` -- what the run *is*: the compiled plan, creation
  time, package version, status (``running`` -> ``complete``/``partial``)
  and final counts.
- ``results.jsonl`` -- what actually *happened*: one JSON line per
  finished job (ok rows carry the full ``ExperimentResult``; error rows
  carry the worker traceback), appended as jobs complete so a killed run
  keeps every cell it already computed.

Typical use::

    store = RunStore.create("runs/demo", plan=plan)
    ParallelExecutor(workers=4).execute(plan, store=store)

    loaded = RunStore.load("runs/demo")
    loaded.results()                      # [ExperimentResult, ...]
    loaded.query(substrate="cim", seed=1) # filtered records
    loaded.summary()                      # counts / status / timing
"""

from __future__ import annotations

import json
import warnings
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator

from repro.api.results import ExperimentResult
from repro.runtime.executor import ExecutionReport, JobRecord
from repro.runtime.plan import Plan
from repro.version import __version__

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"


class RunStore:
    """One sweep run on disk.

    Create with :meth:`create` (new run) or :meth:`load` (existing run
    directory); the constructor itself does not touch the filesystem.
    """

    def __init__(
        self,
        path: str | Path,
        manifest: dict[str, Any],
        records: list[JobRecord] | None = None,
    ):
        self.path = Path(path)
        self.manifest = manifest
        self._records: list[JobRecord] = list(records or [])

    # -- creation / loading ------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        plan: Plan | None = None,
        command: str | None = None,
        extra: dict[str, Any] | None = None,
    ) -> "RunStore":
        """Initialise a run directory with a manifest and empty results.

        Refuses to reuse a directory that already holds a run (a store
        is an append-only record of one execution, not a scratch dir).
        """
        path = Path(path)
        if (path / MANIFEST_NAME).exists():
            raise FileExistsError(
                f"run store already exists at {path}; choose a fresh directory"
            )
        path.mkdir(parents=True, exist_ok=True)
        manifest: dict[str, Any] = {
            "version": __version__,
            # repro: ignore[DET003] manifest metadata, not a result field
            "created_at": datetime.now(timezone.utc).isoformat(),
            "status": "running",
            "command": command,
            "n_jobs": None if plan is None else len(plan),
            "plan": None if plan is None else plan.to_jsonable(),
        }
        if extra:
            manifest.update(extra)
        store = cls(path, manifest)
        store._write_manifest()
        (path / RESULTS_NAME).touch()
        return store

    @classmethod
    def load(cls, path: str | Path, strict: bool = False) -> "RunStore":
        """Load a run directory (manifest + every result line).

        A killed or crashed writer can leave ``results.jsonl`` with a
        truncated final line; by default that trailing fragment is
        skipped with a warning so the completed records stay queryable.
        ``strict=True`` raises the ``json.JSONDecodeError`` instead.  A
        malformed line *before* the end is real corruption and always
        raises.
        """
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no run store manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        records: list[JobRecord] = []
        results_path = path / RESULTS_NAME
        if results_path.exists():
            lines = [
                stripped
                for stripped in (
                    line.strip()
                    for line in results_path.read_text().splitlines()
                )
                if stripped
            ]
            for index, line in enumerate(lines):
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    if strict or index != len(lines) - 1:
                        raise
                    warnings.warn(
                        f"skipping truncated trailing line in "
                        f"{results_path} (crashed writer?); pass "
                        "strict=True to raise instead",
                        stacklevel=2,
                    )
                    continue
                records.append(JobRecord.from_jsonable(payload))
        records.sort(key=lambda record: record.job.index)
        return cls(path, manifest, records)

    # -- writing -----------------------------------------------------------

    def append(self, record: JobRecord) -> None:
        """Append one finished job to ``results.jsonl`` (flushed)."""
        with (self.path / RESULTS_NAME).open("a") as handle:
            # repro: ignore[DET006] store is Python-read; json.loads round-trips
            handle.write(json.dumps(record.to_jsonable()) + "\n")
        self._records.append(record)

    def finalize(self, report: ExecutionReport) -> None:
        """Stamp the manifest with the execution outcome."""
        summary = report.summary()
        self.manifest.update(
            {
                "status": "complete" if report.n_failed == 0 else "partial",
                # repro: ignore[DET003] manifest metadata, not a result field
                "finished_at": datetime.now(timezone.utc).isoformat(),
                **summary,
            }
        )
        self._write_manifest()

    def _write_manifest(self) -> None:
        (self.path / MANIFEST_NAME).write_text(
            # repro: ignore[DET006] store is Python-read; json.loads round-trips
            json.dumps(self.manifest, indent=2) + "\n"
        )

    # -- querying ----------------------------------------------------------

    @property
    def plan(self) -> Plan | None:
        payload = self.manifest.get("plan")
        return None if payload is None else Plan.from_jsonable(payload)

    def records(self) -> list[JobRecord]:
        """Every stored record, in plan order."""
        return sorted(self._records, key=lambda record: record.job.index)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.records())

    def results(self) -> list[ExperimentResult]:
        """Successful results, in plan order."""
        return [
            record.result
            for record in self.records()
            if record.ok and record.result is not None
        ]

    def errors(self) -> list[JobRecord]:
        """Failed records (traceback in ``record.error``)."""
        return [record for record in self.records() if not record.ok]

    def query(
        self,
        experiment_id: str | None = None,
        substrate: str | None = None,
        seed: int | None = None,
        status: str | None = None,
    ) -> list[JobRecord]:
        """Records matching every given filter (None = wildcard)."""
        matches = []
        for record in self.records():
            job = record.job
            if experiment_id is not None and job.experiment_id != experiment_id.upper():
                continue
            if substrate is not None and job.substrate != substrate:
                continue
            if seed is not None and job.seed != seed:
                continue
            if status is not None and record.status != status:
                continue
            matches.append(record)
        return matches

    def summary(self) -> dict[str, Any]:
        """Run-level summary combining the manifest and stored records."""
        records = self.records()
        n_ok = sum(1 for record in records if record.ok)
        return {
            "path": str(self.path),
            "status": self.manifest.get("status", "unknown"),
            "created_at": self.manifest.get("created_at"),
            "version": self.manifest.get("version"),
            "n_jobs_planned": self.manifest.get("n_jobs"),
            "n_recorded": len(records),
            "n_ok": n_ok,
            "n_failed": len(records) - n_ok,
            "wall_time_s": self.manifest.get("wall_time_s"),
            "workers": self.manifest.get("workers"),
        }


__all__ = ["RunStore", "MANIFEST_NAME", "RESULTS_NAME"]
