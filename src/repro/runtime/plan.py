"""Sweep plans: compile an experiment grid into an explicit job list.

A :class:`Plan` is the unit of work the batch runtime executes.  Where
``sweep_experiment`` used to iterate a hidden cross product, a plan makes
every cell explicit and inspectable *before* anything runs: each
:class:`JobSpec` carries the experiment id, substrate, seed and config
overrides of exactly one run, plus a stable ``job_id`` that doubles as
the result filename stem.

Compilation validates the whole grid up front -- unknown experiments,
unsupported substrates and bad override fields fail immediately instead
of ``N`` jobs into a sweep::

    plan = Plan.compile("E3", substrates=["digital", "cim"], seeds=[0, 1])
    print(plan.describe())          # 4 jobs, one line each
    report = ParallelExecutor(workers=4).execute(plan)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.api.registry import get_experiment, resolve_substrate, result_stem
from repro.api.results import config_hash, to_jsonable


@dataclass(frozen=True)
class JobSpec:
    """One cell of a sweep grid: a single experiment execution.

    Attributes:
        index: position in the plan (execution reports keep this order
            regardless of parallel completion order).
        experiment_id: registry id (``"E3"``).
        substrate: substrate override name, or None for the built-in
            default.
        seed: the job's explicit seed.  Compilation resolves "no seed
            given" to the experiment config's default, so the seed is
            part of the spec -- not of executor state -- which is what
            keeps parallel and serial execution bit-identical.
        overrides: config field overrides applied to this job.
    """

    index: int
    experiment_id: str
    substrate: str | None = None
    seed: int = 0
    overrides: dict[str, Any] = field(default_factory=dict)

    @property
    def config_digest(self) -> str:
        """Short hash of the overrides ('' when none)."""
        return config_hash(self.overrides)

    @property
    def job_id(self) -> str:
        """Stable id / filename stem: ``E3-cim-seed1[-cfg<hash>]``."""
        return result_stem(
            self.experiment_id, self.substrate, self.seed, self.overrides
        )

    def to_jsonable(self) -> dict:
        return {
            "index": self.index,
            "job_id": self.job_id,
            "experiment_id": self.experiment_id,
            "substrate": self.substrate,
            "seed": self.seed,
            "overrides": to_jsonable(self.overrides),
            "config_hash": self.config_digest,
        }


@dataclass(frozen=True)
class Plan:
    """An ordered, validated list of jobs.

    Build with :meth:`compile`; iterate, index and ``len()`` like a
    sequence.  The plan is immutable -- executors and stores treat it as
    the authoritative description of what a run *should* contain, which
    is how a store can tell a finished grid from a crashed one.
    """

    jobs: tuple[JobSpec, ...]

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> JobSpec:
        return self.jobs[index]

    @property
    def experiment_ids(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.experiment_id, None)
        return tuple(seen)

    @classmethod
    def compile(
        cls,
        experiment_ids: str | Sequence[str],
        substrates: Sequence[str | None] | None = None,
        seeds: Sequence[int | None] | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> "Plan":
        """Compile an experiment x substrate x seed grid into a plan.

        Every axis entry is validated against the registries and every
        override field is coerced against each experiment's config class
        before a single job exists, so a bad cell cannot abort a
        half-finished sweep.

        Raises:
            KeyError: unknown experiment or substrate.
            ValueError: substrate unsupported by an experiment, or an
                override field that does not fit its config.
        """
        if isinstance(experiment_ids, str):
            experiment_ids = [experiment_ids]
        substrate_axis = list(substrates) if substrates else [None]
        seed_axis = list(seeds) if seeds else [None]
        resolved_overrides = dict(overrides) if overrides else {}

        jobs: list[JobSpec] = []
        for experiment_id in experiment_ids:
            spec = get_experiment(experiment_id)
            # Coercion check, and the source of the default seed.
            config = spec.make_config(resolved_overrides or None)
            default_seed = int(getattr(config, "seed", 0) or 0)
            for substrate in substrate_axis:
                resolved = resolve_substrate(spec, substrate)
                name = None if resolved is None else resolved.name
                for seed in seed_axis:
                    jobs.append(
                        JobSpec(
                            index=len(jobs),
                            experiment_id=spec.id,
                            substrate=name,
                            seed=default_seed if seed is None else int(seed),
                            overrides=dict(resolved_overrides),
                        )
                    )
        if not jobs:
            raise ValueError("plan compiled to zero jobs")
        return cls(jobs=tuple(jobs))

    def describe(self) -> str:
        """Human-readable one-line-per-job table."""
        lines = [f"plan: {len(self.jobs)} job(s)"]
        for job in self.jobs:
            lines.append(
                f"  [{job.index:3d}] {job.job_id}"
                + (f"  overrides={job.overrides}" if job.overrides else "")
            )
        return "\n".join(lines)

    def to_jsonable(self) -> list[dict]:
        return [job.to_jsonable() for job in self.jobs]

    @classmethod
    def from_jsonable(cls, payload: Sequence[Mapping[str, Any]]) -> "Plan":
        jobs = tuple(
            JobSpec(
                index=int(entry["index"]),
                experiment_id=entry["experiment_id"],
                substrate=entry.get("substrate"),
                seed=int(entry.get("seed") or 0),
                overrides=dict(entry.get("overrides") or {}),
            )
            for entry in payload
        )
        return cls(jobs=jobs)


__all__ = ["JobSpec", "Plan"]
